"""Tiling pass: schedule + staged operands -> a concrete loop plan.

This is the first lowering pass.  It turns the declarative schedule
into the exact trip counts the emitter will walk — column tiles,
k-tiles, stored-slot counts per tile, and the unroll row-grouping
(main groups at the scheduled unroll plus shrinking remainder groups,
exactly as a compiled micro-kernel family would be selected).  All
divisibility constraints are checked here, so emission never faults
halfway through a trace.

Multi-core sharding also lives here: a schedule with ``cores=N`` and
``shard=i`` restricts the plan to core *i*'s contiguous slice of the
output-row space (:func:`shard_rows`), so every loop nest walks only
its own rows while the column/k tiling stays identical across cores.
``shard=None`` (the default) plans the whole row space — for ``cores=1``
that lowering is instruction-for-instruction identical to the
pre-multicore compiler (pinned by the golden stream tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelError
from repro.kernels.builder import row_groups
from repro.kernels.compiler.spec import KernelSpec, Schedule


def shard_rows(rows: int, cores: int) -> tuple[tuple[int, int], ...]:
    """Balanced contiguous ``(start, count)`` row ranges, one per core.

    The first ``rows % cores`` shards carry one extra row; with more
    cores than rows the trailing shards are empty (their traces reduce
    to the vsetvli prologue and contribute ~0 cycles to the makespan).
    """
    if cores < 1:
        raise KernelError(f"cores must be >= 1, not {cores}")
    base, extra = divmod(rows, cores)
    ranges = []
    start = 0
    for core in range(cores):
        count = base + (1 if core < extra else 0)
        ranges.append((start, count))
        start += count
    return tuple(ranges)


@dataclass(frozen=True)
class TilePlan:
    """Concrete trip counts of one (spec, schedule, operands) lowering."""

    vlmax: int
    tile_rows: int
    unroll: int
    col_tiles: int
    k_tiles: int
    slots_tile: int  #: stored (value, index) slots per row per k-tile
                     #: (0 for the dense and CSR nests)
    #: unroll row groups: ``main`` run at the scheduled unroll inside a
    #: steady register-driven loop, ``rest`` are the shrinking
    #: remainder groups emitted straight-line.  Group starts are
    #: absolute row indices (offset by the shard's ``row_start``).
    groups: tuple[tuple[int, int], ...]
    main: tuple[tuple[int, int], ...]
    rest: tuple[tuple[int, int], ...]
    #: the output-row slice this plan covers (the whole matrix unless
    #: the schedule selects a shard)
    row_start: int = 0
    row_count: int = 0


def _split_groups(rows: int, unroll: int, start: int = 0):
    groups = tuple((start + s, size) for s, size in row_groups(rows, unroll))
    main = tuple(g for g in groups if g[1] == unroll)
    return groups, main, groups[len(main):]


def _shard_range(schedule: Schedule, rows: int) -> tuple[int, int]:
    """The (start, count) row slice selected by the schedule's shard."""
    if schedule.shard is None:
        return 0, rows
    return shard_rows(rows, schedule.cores)[schedule.shard]


def plan_tiles(spec: KernelSpec, schedule: Schedule, staged) -> TilePlan:
    """Lower the schedule onto the staged operand geometry."""
    vlmax = schedule.vlmax
    row_start, row_count = _shard_range(schedule, staged.rows)
    if spec.operand == "dense":
        if staged.k % vlmax or staged.n_cols % vlmax:
            raise KernelError(
                f"dense kernel requires K={staged.k} and "
                f"N={staged.n_cols} to be multiples of VL={vlmax}")
        groups, main, rest = _split_groups(row_count, schedule.unroll,
                                           row_start)
        return TilePlan(vlmax=vlmax, tile_rows=schedule.tile_rows,
                        unroll=schedule.unroll,
                        col_tiles=staged.n_cols // vlmax,
                        k_tiles=staged.k // vlmax, slots_tile=0,
                        groups=groups, main=main, rest=rest,
                        row_start=row_start, row_count=row_count)
    if spec.operand == "csr":
        if staged.n_cols % vlmax:
            raise KernelError(
                f"N={staged.n_cols} is not a multiple of VL={vlmax}")
        return TilePlan(vlmax=vlmax, tile_rows=schedule.tile_rows,
                        unroll=1, col_tiles=staged.n_cols // vlmax,
                        k_tiles=1, slots_tile=0,
                        groups=(), main=(), rest=(),
                        row_start=row_start, row_count=row_count)
    if spec.operand == "nm-sparse":
        tile = schedule.tile_rows
        groups, main, rest = _split_groups(row_count, schedule.unroll,
                                           row_start)
        return TilePlan(vlmax=vlmax, tile_rows=tile,
                        unroll=schedule.unroll,
                        col_tiles=staged.num_col_tiles(vlmax),
                        k_tiles=staged.num_k_tiles(tile),
                        slots_tile=staged.slots_per_tile(tile),
                        groups=groups, main=main, rest=rest,
                        row_start=row_start, row_count=row_count)
    raise KernelError(
        f"spec {spec.name!r} has unknown operand kind {spec.operand!r}")
