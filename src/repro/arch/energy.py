"""First-order energy model (extension beyond the paper).

The paper argues vindexmac eliminates vector loads and halves the
vector-to-scalar traffic; the obvious follow-up question — *how much
energy does that save?* — is answered here with a standard event-based
model: every execution event is assigned a per-event energy drawn from
the widely used 45 nm estimates of Horowitz (ISSCC 2014) and typical
SRAM/DRAM scaling, and an :class:`EnergyReport` is derived from an
:class:`~repro.arch.stats.ExecutionStats`.

The absolute joules are first-order by construction; the *ratio*
between the two kernels is the meaningful output (the same accesses are
simply priced identically on both sides).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.stats import ExecutionStats


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies in picojoules.

    Defaults: fp32 mul-acc ~4 pJ and int ALU ~0.3 pJ (Horowitz, 45 nm);
    a 512-bit VRF access ~6 pJ (wide SRAM read); L2 line access ~50 pJ
    (512 KB SRAM bank + wiring); DRAM line ~2000 pJ (~31 pJ/B x 64 B);
    scalar core overhead folded into a per-instruction constant.
    """

    scalar_instr_pj: float = 2.0     #: fetch/decode/ALU of one scalar op
    vector_alu_pj: float = 5.0       #: 16-lane int add/logic/slide
    vector_mac_pj: float = 64.0      #: 16 fp32 MACs (16 x ~4 pJ)
    vrf_access_pj: float = 6.0       #: one 512-bit VRF read or write
    v2s_transfer_pj: float = 3.0     #: vector->scalar move wiring
    l2_access_pj: float = 50.0       #: one 64 B L2 access
    dram_access_pj: float = 2000.0   #: one 64 B DRAM line transfer

    def energy(self, stats: ExecutionStats) -> "EnergyReport":
        """Price every counted event of a simulated execution."""
        vector_arith = (stats.vector_instructions
                        - stats.vector_loads - stats.vector_stores)
        macs = stats.vfmacc_count + stats.vindexmac_count
        plain_vector = vector_arith - macs
        # VRF traffic: every vector instruction reads/writes the file;
        # MACs read 3 operands (vindexmac's indexed read is one of them
        # — Section III-B: it reuses an existing port) and write 1.
        vrf_accesses = 4 * macs + 3 * plain_vector \
            + 2 * (stats.vector_loads + stats.vector_stores)
        breakdown = {
            "scalar core": stats.scalar_instructions * self.scalar_instr_pj,
            "vector alu": plain_vector * self.vector_alu_pj,
            "vector mac": macs * self.vector_mac_pj,
            "vrf": vrf_accesses * self.vrf_access_pj,
            "v2s transfers": stats.vector_to_scalar_moves
            * self.v2s_transfer_pj,
            "l2": stats.l2_accesses * self.l2_access_pj,
            "dram": (stats.dram_reads + stats.dram_writes)
            * self.dram_access_pj,
        }
        return EnergyReport(breakdown_pj=breakdown)


@dataclass(frozen=True)
class EnergyReport:
    """Energy of one simulated execution, by component."""

    breakdown_pj: dict[str, float] = field(default_factory=dict)

    @property
    def total_pj(self) -> float:
        return sum(self.breakdown_pj.values())

    @property
    def total_uj(self) -> float:
        return self.total_pj / 1e6

    def fraction(self, component: str) -> float:
        total = self.total_pj
        return self.breakdown_pj[component] / total if total else 0.0

    def render(self) -> str:
        lines = [f"total energy: {self.total_uj:.3f} uJ"]
        for name, pj in sorted(self.breakdown_pj.items(),
                               key=lambda kv: -kv[1]):
            lines.append(f"  {name:14s} {pj / 1e6:10.3f} uJ "
                         f"({100 * self.fraction(name):5.1f}%)")
        return "\n".join(lines)


def energy_of(stats: ExecutionStats,
              model: EnergyModel | None = None) -> EnergyReport:
    """Convenience wrapper: price ``stats`` with the default model."""
    return (model or EnergyModel()).energy(stats)


def energy_ratio(baseline: ExecutionStats, proposed: ExecutionStats,
                 model: EnergyModel | None = None) -> float:
    """Proposed / baseline energy (smaller is better)."""
    model = model or EnergyModel()
    return model.energy(proposed).total_pj / model.energy(baseline).total_pj
