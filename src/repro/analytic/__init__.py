"""Closed-form cost model (exact instruction counts at any scale)."""

from repro.analytic.costmodel import (
    KernelCost,
    SpmmGeometry,
    indexmac_spmm_cost,
    memory_access_reduction,
    rowwise_spmm_cost,
    spmm_cost,
)
from repro.analytic.cyclemodel import (
    CycleEstimate,
    estimate_cycles,
    estimate_speedup,
)
from repro.analytic.validation import (
    BACKEND_CYCLE_TOLERANCE,
    BackendValidation,
    StreamCount,
    count_kernel,
    count_stream,
    validate_backend,
)

__all__ = [
    "BACKEND_CYCLE_TOLERANCE",
    "BackendValidation",
    "CycleEstimate",
    "KernelCost",
    "SpmmGeometry",
    "StreamCount",
    "count_kernel",
    "count_stream",
    "estimate_cycles",
    "estimate_speedup",
    "indexmac_spmm_cost",
    "memory_access_reduction",
    "rowwise_spmm_cost",
    "spmm_cost",
    "validate_backend",
]
