"""Structured (N:M) and unstructured (CSR) sparse matrix formats."""

from repro.sparse.blocksparse import NMSparseMatrix, pad_columns
from repro.sparse.csr import CSRMatrix
from repro.sparse.prune import (
    magnitude_prune,
    prune_to_nm,
    random_nm_matrix,
    random_nm_pattern,
)
from repro.sparse.stats import SparsitySummary, summarize, theoretical_density

__all__ = [
    "CSRMatrix",
    "NMSparseMatrix",
    "SparsitySummary",
    "magnitude_prune",
    "pad_columns",
    "prune_to_nm",
    "random_nm_matrix",
    "random_nm_pattern",
    "summarize",
    "theoretical_density",
]
