"""Tests for the cache, DRAM and hierarchy timing models."""

import pytest

from repro.arch import CacheConfig, DramConfig, DramModel, SetAssociativeCache
from repro.arch.config import ProcessorConfig
from repro.arch.hierarchy import MemoryHierarchy
from repro.errors import SimulationError


class InstantMemory:
    """Next-level stub with fixed latency and no bandwidth limit."""

    def __init__(self, latency=100):
        self.latency = latency
        self.accesses = []

    def access(self, addr, at_cycle, is_write):
        self.accesses.append((addr, at_cycle, is_write))
        return at_cycle + (1 if is_write else self.latency)


def make_cache(size=1024, ways=2, hit=4, banks=1, next_level=None,
               hashed=False):
    cfg = CacheConfig(size_bytes=size, ways=ways, hit_latency=hit,
                      banks=banks, hashed_index=hashed)
    return SetAssociativeCache("T", cfg, next_level or InstantMemory())


def test_cold_miss_then_hit():
    cache = make_cache()
    t1 = cache.access(0, 0, False)
    assert cache.misses == 1
    assert t1 >= 100  # went to next level
    t2 = cache.access(0, t1, False)
    assert cache.hits == 1
    assert t2 == t1 + 4  # hit latency


def test_same_line_different_word_hits():
    cache = make_cache()
    cache.access(0, 0, False)
    cache.access(60, 200, False)  # same 64B line
    assert cache.hits == 1


def test_lru_eviction():
    # 1024B / 64B / 2 ways = 8 sets; lines 0, 8, 16 map to set 0
    cache = make_cache()
    cache.access(0 * 64, 0, False)
    cache.access(8 * 64, 200, False)
    cache.access(0 * 64, 400, False)      # touch line 0 -> line 8 is LRU
    cache.access(16 * 64, 600, False)     # evicts line 8
    assert cache.contains(0 * 64)
    assert not cache.contains(8 * 64)
    assert cache.contains(16 * 64)


def test_dirty_eviction_writes_back():
    nxt = InstantMemory()
    cache = make_cache(next_level=nxt)
    cache.access(0 * 64, 0, True)      # dirty line 0
    cache.access(8 * 64, 200, False)
    cache.access(16 * 64, 400, False)  # evicts dirty line 0
    assert cache.writebacks == 1
    writes = [a for a in nxt.accesses if a[2]]
    assert len(writes) == 1
    assert writes[0][0] == 0


def test_clean_eviction_no_writeback():
    cache = make_cache()
    cache.access(0 * 64, 0, False)
    cache.access(8 * 64, 200, False)
    cache.access(16 * 64, 400, False)
    assert cache.writebacks == 0


def test_bank_serialization():
    cache = make_cache(banks=1)
    cache.access(0, 0, False)
    cache.access(0, 100, False)
    # two simultaneous hits to one bank serialize by one cycle
    a = cache.access(0, 200, False)
    b = cache.access(0, 200, False)
    assert b == a + 1


def test_multibank_parallelism():
    cache = make_cache(banks=8)
    cache.access(0 * 64, 0, False)
    cache.access(1 * 64, 0, False)  # different bank: no serialization
    a = cache.access(0 * 64, 200, False)
    b = cache.access(1 * 64, 200, False)
    assert a == b


def test_hit_rate_and_flush():
    cache = make_cache()
    cache.access(0, 0, False)
    cache.access(0, 100, False)
    assert cache.hit_rate == pytest.approx(0.5)
    cache.flush()
    cache.access(0, 200, False)
    assert cache.misses == 2


def test_bad_geometry_rejected():
    with pytest.raises(SimulationError):
        CacheConfig(size_bytes=1000, ways=3, hit_latency=1)


def test_hashed_index_breaks_stride_camping():
    # 64 lines at a power-of-two stride of 8 camp on one set with modulo
    # indexing (2-way: 62 evictions) but spread out with XOR hashing.
    plain = make_cache(size=4096, ways=2, hashed=False)
    hashed = make_cache(size=4096, ways=2, hashed=True)
    for cache in (plain, hashed):
        for i in range(32):
            cache.access(i * 8 * 64, 1000 * i, False)
        for i in range(32):
            cache.access(i * 8 * 64, 1000 * (i + 32), False)
    assert plain.hits == 0
    assert hashed.hits > 16


def test_dram_row_hit_vs_miss():
    dram = DramModel(DramConfig(row_hit_latency=20, row_miss_latency=40,
                                cycles_per_line=4, row_bytes=2048))
    t1 = dram.access(0, 0, False)
    assert t1 == 40  # first access misses the (closed) row
    t2 = dram.access(64, t1, False)
    assert t2 == t1 + 20  # same row
    dram.access(1 << 20, t2, False)
    assert dram.row_misses == 2
    assert dram.row_hits == 1


def test_dram_bandwidth_limit():
    dram = DramModel(DramConfig(row_hit_latency=20, row_miss_latency=40,
                                cycles_per_line=10, row_bytes=2048))
    dram.access(0, 0, False)
    t = dram.access(64, 0, False)  # issued at the same cycle
    assert t == 10 + 20  # waits for the channel, then row hit


def test_dram_write_is_posted():
    dram = DramModel(DramConfig())
    done = dram.access(0, 0, True)
    assert done <= 2
    assert dram.writes == 1


def test_hierarchy_scalar_path_uses_l1():
    hier = MemoryHierarchy(ProcessorConfig.paper_default())
    hier.scalar_access(0, 8, 0, False)
    assert hier.l1d.misses == 1
    assert hier.l2.misses == 1
    hier.scalar_access(0, 8, 1000, False)
    assert hier.l1d.hits == 1
    assert hier.l2.misses == 1  # second access never reaches L2


def test_hierarchy_vector_path_bypasses_l1():
    hier = MemoryHierarchy(ProcessorConfig.paper_default())
    hier.vector_access(0, 64, 0, False)
    assert hier.l1d.accesses == 0
    assert hier.l2.misses == 1


def test_hierarchy_spanning_access():
    hier = MemoryHierarchy(ProcessorConfig.paper_default())
    # 64 bytes starting at 32 spans two lines
    hier.vector_access(32, 64, 0, False)
    assert hier.l2.accesses == 2


def test_hierarchy_reset_and_flush():
    hier = MemoryHierarchy(ProcessorConfig.paper_default())
    hier.vector_access(0, 64, 0, False)
    hier.reset_stats()
    assert hier.l2.accesses == 0
    hier.flush()
    hier.vector_access(0, 64, 0, False)
    assert hier.l2.misses == 1
