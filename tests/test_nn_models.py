"""Tests for the CNN layer tables and shape arithmetic."""

import pytest

from repro.errors import WorkloadError
from repro.nn import (
    ConvLayer,
    conv,
    get_model,
    list_models,
    total_macs,
    unique_gemm_layers,
)


def test_list_models():
    assert list_models() == ["densenet121", "inception_v3", "resnet50"]
    with pytest.raises(WorkloadError):
        get_model("vgg16")


def test_model_name_normalisation():
    assert len(get_model("ResNet50")) == len(get_model("resnet50"))
    assert len(get_model("inception-v3")) == len(get_model("inception_v3"))


def test_resnet50_structure():
    layers = get_model("resnet50")
    # 1 stem + (3+4+6+3) blocks x 3 convs + 4 projection convs
    assert len(layers) == 1 + 16 * 3 + 4
    assert layers[0].name == "conv1"
    assert layers[0].gemm.rows == 64
    assert layers[0].gemm.k == 3 * 7 * 7
    assert layers[0].gemm.n == 112 * 112
    last = layers[-1]
    assert last.out_channels == 2048
    assert last.gemm.n == 49


def test_resnet50_known_macs():
    # ~4.1 GMACs for 224x224 ImageNet inference (He et al. report 4.1B)
    assert total_macs("resnet50") == pytest.approx(4.09e9, rel=0.02)


def test_densenet121_structure():
    layers = get_model("densenet121")
    # conv0 + (6+12+24+16) dense layers x 2 convs + 3 transitions
    assert len(layers) == 1 + 58 * 2 + 3
    assert total_macs("densenet121") == pytest.approx(2.83e9, rel=0.02)
    # first dense layer input is 64 channels; second 96
    assert layers[1].in_channels == 64
    assert layers[3].in_channels == 96
    # final dense block layer sees 512 + 15*32 = 992 channels
    assert layers[-1].in_channels == 128  # its 3x3 follows the bottleneck


def test_inception_v3_structure():
    layers = get_model("inception_v3")
    assert len(layers) == 94
    assert total_macs("inception_v3") == pytest.approx(5.7e9, rel=0.03)
    # the stem halves 299 -> 149
    assert layers[0].out_h == 149
    # asymmetric kernels exist (1x7 and 7x1)
    kernels = {(l.kernel_h, l.kernel_w) for l in layers}
    assert (1, 7) in kernels and (7, 1) in kernels


def test_spatial_chain_consistency():
    """Every model's layer list has self-consistent spatial sizes."""
    for name in list_models():
        for layer in get_model(name):
            assert layer.out_h >= 1 and layer.out_w >= 1, layer.name


def test_conv_output_arithmetic():
    layer = conv("t", 3, 8, 224, 7, stride=2, pad=3)
    assert layer.out_h == 112
    same = conv("s", 4, 4, 56, 3)
    assert same.out_h == 56
    asym = conv("a", 4, 4, 17, 1, kw=7)
    assert asym.out_h == 17 and asym.out_w == 17


def test_conv_validation():
    with pytest.raises(WorkloadError):
        ConvLayer("bad", 0, 4, 8, 8, 3, 3)
    with pytest.raises(WorkloadError):
        ConvLayer("grouped", 4, 4, 8, 8, 3, 3, groups=2)


def test_gemm_shape():
    layer = conv("g", 16, 32, 28, 3)
    g = layer.gemm
    assert (g.rows, g.k, g.n) == (32, 16 * 9, 28 * 28)
    assert g.macs == 32 * 144 * 784
    assert str(g) == "32x144x784"


def test_unique_gemm_layers_multiplicity_sums():
    for name in list_models():
        layers = get_model(name)
        uniq = unique_gemm_layers(layers)
        assert sum(mult for _, mult in uniq) == len(layers)
        # multiplicity-weighted MACs must equal the plain sum
        weighted = sum(l.gemm.macs * m for l, m in uniq)
        assert weighted == total_macs(name)


def test_classifiers_present():
    from repro.nn import (
        densenet121_classifier,
        inception_v3_classifier,
        resnet50_classifier,
    )

    assert resnet50_classifier().gemm.rows == 1000
    assert densenet121_classifier().in_features == 1024
    assert inception_v3_classifier().in_features == 2048
