"""Regenerate ``golden_streams.json`` — the stream-identity oracle.

Run from a revision whose kernel emitters are known-good (the file in
the repository was captured from the last hand-written emitters, before
the schedule-driven compiler replaced their bodies)::

    PYTHONPATH=src python tests/data/capture_golden.py

Each entry records a sha256 fingerprint of the exact dynamic
instruction stream (see ``Trace.fingerprint``) for one (kernel,
schedule, workload) point, so ``tests/test_compiler_golden.py`` can
prove that the compiler reproduces the historical streams
instruction-for-instruction without keeping the old emitters around.
"""

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.arch import DecoupledProcessor, ProcessorConfig
from repro.kernels import (
    Dataflow,
    KernelOptions,
    stage_dense,
    stage_spmm,
    trace_dense_rowwise,
    trace_indexmac_spmm,
    trace_rowwise_spmm,
)
from repro.kernels.spmm_csr import stage_csr, trace_csr_spmm
from repro.sparse import random_nm_matrix
from repro.sparse.csr import CSRMatrix


def fingerprint(trace) -> str:
    lines = (",".join(map(str, i.key())) for i in trace.instructions())
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def spmm_staged(rows, k, n, nm, seed=0):
    rng = np.random.default_rng(seed)
    a = random_nm_matrix(rows, k, *nm, rng)
    b = rng.standard_normal((k, n)).astype(np.float32)
    proc = DecoupledProcessor(ProcessorConfig.paper_default())
    return stage_spmm(proc.mem, a, b), a, b


def main() -> None:
    cases = []
    shape = dict(rows=10, k=32, n=32)

    for nm in ((1, 4), (2, 4)):
        staged, _, _ = spmm_staged(nm=nm, **shape)
        for df in ("B", "C", "A"):
            for unroll in (1, 2, 4):
                for tile in (8, 16):
                    opt = KernelOptions(unroll=unroll, tile_rows=tile,
                                        dataflow=Dataflow(df))
                    trace = trace_rowwise_spmm(staged, opt)
                    cases.append(dict(
                        kernel="rowwise-spmm", nm=nm, dataflow=df,
                        unroll=unroll, tile_rows=tile, init_c_zero=True,
                        **shape, n_instrs=trace.dynamic_length,
                        fingerprint=fingerprint(trace)))
        for unroll in (1, 2, 4):
            for tile in (8, 16):
                opt = KernelOptions(unroll=unroll, tile_rows=tile)
                trace = trace_indexmac_spmm(staged, opt)
                cases.append(dict(
                    kernel="indexmac-spmm", nm=nm, dataflow="B",
                    unroll=unroll, tile_rows=tile, init_c_zero=True,
                    **shape, n_instrs=trace.dynamic_length,
                    fingerprint=fingerprint(trace)))

    # init_c_zero=False (C loaded on the first k-tile too)
    staged, _, _ = spmm_staged(nm=(1, 4), **shape)
    for kernel, builder in (("rowwise-spmm", trace_rowwise_spmm),
                            ("indexmac-spmm", trace_indexmac_spmm)):
        opt = KernelOptions(init_c_zero=False)
        trace = builder(staged, opt)
        cases.append(dict(
            kernel=kernel, nm=(1, 4), dataflow="B", unroll=4,
            tile_rows=16, init_c_zero=False, **shape,
            n_instrs=trace.dynamic_length, fingerprint=fingerprint(trace)))

    # dense rowwise (Algorithm 1)
    rng = np.random.default_rng(0)
    a = rng.standard_normal((10, 32)).astype(np.float32)
    b = rng.standard_normal((32, 32)).astype(np.float32)
    for unroll in (1, 2, 4):
        for init_c_zero in ((True,) if unroll != 4 else (True, False)):
            proc = DecoupledProcessor(ProcessorConfig.paper_default())
            staged_d = stage_dense(proc.mem, a, b)
            opt = KernelOptions(unroll=unroll, init_c_zero=init_c_zero)
            trace = trace_dense_rowwise(staged_d, opt)
            cases.append(dict(
                kernel="dense-rowwise", nm=None, dataflow=None,
                unroll=unroll, tile_rows=16, init_c_zero=init_c_zero,
                **shape, n_instrs=trace.dynamic_length,
                fingerprint=fingerprint(trace)))

    # unstructured CSR
    for seed, (rows, k, n) in ((0, (6, 32, 16)), (1, (10, 48, 32))):
        rng = np.random.default_rng(seed)
        a_nm = random_nm_matrix(rows, k, 2, 4, rng)
        b = rng.standard_normal((k, n)).astype(np.float32)
        proc = DecoupledProcessor(ProcessorConfig.paper_default())
        staged_c = stage_csr(proc.mem, CSRMatrix.from_dense(a_nm.to_dense()),
                             b)
        trace = trace_csr_spmm(staged_c)
        cases.append(dict(
            kernel="csr-spmm", nm=(2, 4), dataflow=None, unroll=1,
            tile_rows=16, init_c_zero=True, rows=rows, k=k, n=n,
            seed=seed, n_instrs=trace.dynamic_length,
            fingerprint=fingerprint(trace)))

    out = Path(__file__).parent / "golden_streams.json"
    out.write_text(json.dumps(cases, indent=1) + "\n")
    print(f"{len(cases)} golden cases -> {out}")


if __name__ == "__main__":
    main()
