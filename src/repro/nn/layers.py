"""Layer descriptors and the conv -> GEMM shape mapping.

The paper maps every convolution to a sparse x dense matrix
multiplication ``A x B`` [5]: matrix A holds the structured-sparse
weights (one row per output channel, ``Cin*kh*kw`` columns) and matrix
B the im2col-unfolded input features (``Cin*kh*kw`` rows, one column
per output pixel).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class GemmShape:
    """The A x B shape a layer lowers to: (rows x k) x (k x n)."""

    rows: int  #: rows of A = output channels
    k: int     #: columns of A = rows of B = Cin * kh * kw
    n: int     #: columns of B = output pixels

    @property
    def macs(self) -> int:
        """Dense multiply-accumulate count."""
        return self.rows * self.k * self.n

    def __str__(self) -> str:
        return f"{self.rows}x{self.k}x{self.n}"


@dataclass(frozen=True)
class ConvLayer:
    """One convolution layer of a CNN (inference, batch 1)."""

    name: str
    in_channels: int
    out_channels: int
    in_h: int
    in_w: int
    kernel_h: int
    kernel_w: int
    stride: int = 1
    pad_h: int = 0
    pad_w: int = 0
    groups: int = 1

    def __post_init__(self):
        if min(self.in_channels, self.out_channels, self.in_h, self.in_w,
               self.kernel_h, self.kernel_w, self.stride) < 1:
            raise WorkloadError(f"bad conv geometry in layer {self.name!r}")
        if self.groups != 1:
            raise WorkloadError(
                "grouped convolutions are not used by the paper's CNNs")

    @property
    def out_h(self) -> int:
        return (self.in_h + 2 * self.pad_h - self.kernel_h) // self.stride + 1

    @property
    def out_w(self) -> int:
        return (self.in_w + 2 * self.pad_w - self.kernel_w) // self.stride + 1

    @property
    def gemm(self) -> GemmShape:
        """The sparse x dense GEMM this convolution lowers to."""
        return GemmShape(
            rows=self.out_channels,
            k=self.in_channels * self.kernel_h * self.kernel_w,
            n=self.out_h * self.out_w,
        )

    @property
    def weight_count(self) -> int:
        return self.out_channels * self.in_channels * \
            self.kernel_h * self.kernel_w

    def describe(self) -> str:
        return (f"{self.name}: {self.in_channels}->{self.out_channels} "
                f"{self.kernel_h}x{self.kernel_w}/{self.stride} "
                f"@{self.in_h}x{self.in_w} -> GEMM {self.gemm}")


@dataclass(frozen=True)
class LinearLayer:
    """A fully-connected layer (kept in model tables for completeness;
    the paper evaluates convolutional layers only)."""

    name: str
    in_features: int
    out_features: int

    @property
    def gemm(self) -> GemmShape:
        return GemmShape(rows=self.out_features, k=self.in_features, n=1)


def conv(name: str, cin: int, cout: int, hw: int, k: int, stride: int = 1,
         pad: int | None = None, in_w: int | None = None,
         kw: int | None = None, pad_w: int | None = None) -> ConvLayer:
    """Compact constructor used by the model tables.

    ``hw`` is the input height (and width unless ``in_w`` is given);
    ``k`` the kernel height (and width unless ``kw`` is given).  The
    default padding is the 'same'-ish ``k // 2`` used by these CNNs.
    """
    kh = k
    kw = k if kw is None else kw
    ph = kh // 2 if pad is None else pad
    pw = kw // 2 if pad_w is None else pad_w
    return ConvLayer(
        name=name, in_channels=cin, out_channels=cout,
        in_h=hw, in_w=hw if in_w is None else in_w,
        kernel_h=kh, kernel_w=kw, stride=stride, pad_h=ph, pad_w=pw,
    )
