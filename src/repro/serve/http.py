"""Stdlib-only HTTP/1.1 front end on raw asyncio streams.

No ``http.server``, no threads per connection: one
:class:`ExperimentServer` owns an :class:`ExperimentService` and
serves keep-alive connections straight off the event loop, so a warm
cache hit is answered without ever leaving it.

Endpoints
---------
``GET  /v1/healthz``               liveness probe
``GET  /v1/stats``                 queue depths, hit rate, latency
                                   percentiles, engine counters
``POST /v1/jobs``                  submit a job batch;
                                   body ``{"jobs": [...], "lane":
                                   "interactive"|"bulk", "wait":
                                   bool, "include_stats": bool}``.
                                   ``wait`` (default true) answers
                                   with every result inline;
                                   otherwise a batch id for polling/
                                   streaming.  Overload -> 429 with
                                   ``Retry-After``.
``GET  /v1/batches/<id>``          batch status (done counts,
                                   per-job state)
``GET  /v1/batches/<id>/stream``   NDJSON progress stream: one line
                                   per job in completion order, then
                                   a summary line
``POST /v1/shutdown``              graceful stop (CI and tests)
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from urllib.parse import urlsplit

from repro.errors import ServeError, ServeOverloadedError
from repro.serve.protocol import job_from_dict, run_to_dict
from repro.serve.service import WARM, ExperimentService, ServeConfig

#: Largest accepted request body (a fig4-scale batch is ~100 KiB;
#: this bounds a misbehaving client, not a legitimate sweep).
MAX_BODY_BYTES = 32 * 1024 * 1024

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}


class _HttpError(Exception):
    """Route-level failure that maps straight to a status code."""

    def __init__(self, status: int, message: str,
                 headers: dict | None = None):
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


class _Request:
    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method, path, query, headers, body):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def json(self):
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except ValueError:
            raise _HttpError(400, "request body is not valid JSON") \
                from None


async def _read_request(reader: asyncio.StreamReader) -> _Request | None:
    """Parse one HTTP/1.1 request; None on a cleanly closed socket."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    try:
        method, target, _version = line.decode("latin-1").split()
    except ValueError:
        raise _HttpError(400, "malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
        if len(headers) > 100:
            raise _HttpError(400, "too many headers")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _HttpError(400, "bad Content-Length") from None
    if length > MAX_BODY_BYTES:
        raise _HttpError(413, f"body over {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    return _Request(method.upper(), split.path, split.query, headers,
                    body)


def _encode_response(status: int, body: bytes,
                     content_type: str = "application/json",
                     headers: dict | None = None,
                     keep_alive: bool = True) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


class ExperimentServer:
    """The asyncio HTTP server wrapping one :class:`ExperimentService`."""

    def __init__(self, service: ExperimentService | None = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service or ExperimentService()
        self.host = host
        self.port = port  #: 0 until :meth:`start` binds a socket
        self._server: asyncio.AbstractServer | None = None
        self._stopped = asyncio.Event()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "ExperimentServer":
        """Bind the socket and start the service dispatcher."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Serve until :meth:`stop` (the shutdown endpoint) fires."""
        await self._stopped.wait()
        await self.aclose()

    def stop(self) -> None:
        self._stopped.set()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    # -- connection handling -------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _HttpError as exc:
                    writer.write(_encode_response(
                        exc.status, _json_body({"error": str(exc)}),
                        keep_alive=False))
                    break
                if request is None:
                    break
                keep_alive = request.headers.get(
                    "connection", "keep-alive").lower() != "close"
                try:
                    handled = await self._route(request, writer,
                                                keep_alive)
                except _HttpError as exc:
                    writer.write(_encode_response(
                        exc.status, _json_body({"error": str(exc)}),
                        headers=exc.headers, keep_alive=keep_alive))
                except ServeOverloadedError as exc:
                    writer.write(_encode_response(
                        429, _json_body({
                            "error": str(exc),
                            "retry_after_s": exc.retry_after}),
                        headers={"Retry-After":
                                 f"{max(1, round(exc.retry_after))}"},
                        keep_alive=keep_alive))
                except ServeError as exc:
                    writer.write(_encode_response(
                        400, _json_body({"error": str(exc)}),
                        keep_alive=keep_alive))
                except Exception as exc:  # never kill the connection loop
                    writer.write(_encode_response(
                        500, _json_body({"error": f"internal: {exc}"}),
                        keep_alive=False))
                    keep_alive = False
                else:
                    if handled == "close":
                        keep_alive = False
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        except asyncio.CancelledError:
            pass  # server shutdown cancels in-flight connections
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, request: _Request, writer,
                     keep_alive: bool) -> str | None:
        method, path = request.method, request.path
        if path == "/v1/healthz" and method == "GET":
            return self._reply(writer, keep_alive, {"ok": True})
        if path == "/v1/stats" and method == "GET":
            return self._reply(writer, keep_alive,
                               self.service.stats())
        if path == "/v1/jobs" and method == "POST":
            return await self._submit(request, writer, keep_alive)
        if path == "/v1/shutdown" and method == "POST":
            self._reply(writer, False, {"ok": True,
                                        "stopping": True})
            self.stop()
            return "close"
        if path.startswith("/v1/batches/") and method == "GET":
            rest = path[len("/v1/batches/"):]
            if rest.endswith("/stream"):
                return await self._stream(rest[:-len("/stream")],
                                          writer)
            return self._status(rest, writer, keep_alive)
        if path.startswith("/v1/"):
            raise _HttpError(404, f"no such endpoint: "
                                  f"{method} {path}")
        raise _HttpError(404, "unknown path (the API lives under /v1/)")

    def _reply(self, writer, keep_alive: bool, payload: dict,
               status: int = 200) -> None:
        writer.write(_encode_response(status, _json_body(payload),
                                      keep_alive=keep_alive))
        return None

    # -- endpoints -----------------------------------------------------
    async def _submit(self, request: _Request, writer,
                      keep_alive: bool) -> None:
        t0 = time.perf_counter()
        payload = request.json()
        specs = payload.get("jobs")
        if not isinstance(specs, list) or not specs:
            raise ServeError('body needs a non-empty "jobs" array')
        jobs = [job_from_dict(spec) for spec in specs]
        lane = payload.get("lane", "interactive")
        include_stats = bool(payload.get("include_stats", False))
        handle = self.service.submit(jobs, lane=lane)
        if not payload.get("wait", True):
            return self._reply(writer, keep_alive, {
                "batch": handle.id, "lane": lane,
                "total": handle.total, "counts": handle.counts()})
        results = await handle.results()
        body = {
            "batch": handle.id,
            "lane": lane,
            "counts": handle.counts(),
            "elapsed_ms": round(1e3 * (time.perf_counter() - t0), 3),
            "results": [
                _result_payload(entry, result, include_stats)
                for entry, result in zip(handle.entries, results)
            ],
        }
        return self._reply(writer, keep_alive, body)

    def _status(self, batch_id: str, writer,
                keep_alive: bool) -> None:
        try:
            handle = self.service.batch(batch_id)
        except ServeError as exc:
            raise _HttpError(404, str(exc)) from None
        jobs = []
        for entry in handle.entries:
            state = "done"
            if entry["source"] != WARM:
                future = entry["future"]
                if not future.done():
                    state = "pending"
                elif future.exception() is not None:
                    state = "error"
            jobs.append({"index": entry["index"], "key": entry["key"],
                         "source": entry["source"], "state": state})
        return self._reply(writer, keep_alive, {
            "batch": handle.id, "lane": handle.lane,
            "total": handle.total, "done": handle.done_count(),
            "counts": handle.counts(), "jobs": jobs})

    async def _stream(self, batch_id: str, writer) -> str:
        """NDJSON progress: jobs in completion order, then a summary.

        The response is close-delimited (no Content-Length), so lines
        flow to the client the moment each job finishes.
        """
        try:
            handle = self.service.batch(batch_id)
        except ServeError as exc:
            raise _HttpError(404, str(exc)) from None
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        warm = [e for e in handle.entries if e["source"] == WARM]
        pending = {e["future"]: e for e in handle.entries
                   if e["source"] != WARM}
        errors = 0
        for entry in warm:
            writer.write(_ndjson_line(_result_payload(
                entry, entry["run"], False)))
        await writer.drain()
        futures = set(pending)
        while futures:
            done, futures = await asyncio.wait(
                futures, return_when=asyncio.FIRST_COMPLETED)
            for future in done:
                entry = pending[future]
                result = (future.exception()
                          if future.exception() is not None
                          else future.result())
                if isinstance(result, Exception):
                    errors += 1
                writer.write(_ndjson_line(_result_payload(
                    entry, result, False)))
            await writer.drain()
        writer.write(_ndjson_line({
            "done": True, "batch": handle.id, "total": handle.total,
            "errors": errors, "counts": handle.counts()}))
        await writer.drain()
        return "close"


def _json_body(payload: dict) -> bytes:
    return (json.dumps(payload, separators=(",", ":"))
            + "\n").encode()


def _ndjson_line(payload: dict) -> bytes:
    return (json.dumps(payload, separators=(",", ":"))
            + "\n").encode()


def _result_payload(entry: dict, result, include_stats: bool) -> dict:
    payload = {"index": entry["index"], "key": entry["key"],
               "source": entry["source"]}
    if isinstance(result, Exception):
        payload["error"] = str(result)
    else:
        payload.update(run_to_dict(result,
                                   include_stats=include_stats))
    return payload


# ======================================================================
# Embedded server (tests, benches, and `repro serve`)
# ======================================================================
async def _amain(server: ExperimentServer,
                 ready: "threading.Event | None" = None,
                 announce=None) -> None:
    await server.start()
    if announce is not None:
        announce(server)
    if ready is not None:
        ready.set()
    await server.serve_forever()


def serve_forever(service: ExperimentService | None = None,
                  host: str = "127.0.0.1", port: int = 0,
                  announce=None) -> None:
    """Blocking entry point: run a server until shut down (the CLI's
    ``repro serve``).  ``announce(server)`` fires once the socket is
    bound — print the URL there."""
    server = ExperimentServer(service=service, host=host, port=port)
    asyncio.run(_amain(server, announce=announce))


class ServerThread:
    """An :class:`ExperimentServer` on a background thread.

    The test suite and the ``bench_serve`` load harness embed the
    whole server in-process::

        with ServerThread(ServeConfig(...)) as server:
            client = ServeClient(server.url)
            ...

    The context exit requests shutdown and joins the thread.
    """

    def __init__(self, config: ServeConfig | None = None,
                 engine=None, host: str = "127.0.0.1", port: int = 0,
                 start_timeout: float = 20.0):
        self.service = ExperimentService(engine=engine, config=config)
        self.server = ExperimentServer(service=self.service,
                                       host=host, port=port)
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True)
        self._start_timeout = start_timeout

    def _run(self) -> None:
        asyncio.run(_amain(self.server, ready=self._ready))

    @property
    def url(self) -> str:
        return self.server.url

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(self._start_timeout):
            raise ServeError("embedded server failed to start")
        return self

    def __exit__(self, *exc_info) -> None:
        from repro.serve.client import ServeClient

        try:
            ServeClient(self.url, timeout=5.0).shutdown()
        except ServeError:
            pass  # already down
        self._thread.join(timeout=self._start_timeout)
