"""Parallel, cached experiment execution engine.

Every simulation a figure/table/ablation needs is expressed as a
hashable :class:`SimJob` (kernel, workload source, sparsity pattern,
:class:`KernelOptions`, :class:`ProcessorConfig`).  The
:class:`ExperimentEngine` deduplicates jobs within a batch, memoises
results in-process and in an on-disk JSON cache keyed by a content
hash of the job, and fans cache misses out across a **persistent**
worker-process pool (falling back to in-process execution when a pool
cannot be created).  Result order is always the submission order, so
parallel and serial runs render bit-identical tables.

Dispatch path (fast to slow)::

    in-process memo -> cache LRU -> packed cache index -> per-file
    cache entry -> simulate (persistent pool / in-process)

Pool rules
----------
* The pool is spawned lazily on the first parallel batch and **reused
  across** ``run()`` calls, so repeated-batch workloads (the tuner,
  ``repro bench``, figure regeneration) pay pool spin-up and module
  re-import exactly once.
* ``$REPRO_POOL_IDLE`` seconds after the last batch (default 60;
  ``<= 0`` disables reaping) an idle pool is reaped; the next batch
  respawns it transparently.  A pool broken mid-batch (a worker died)
  is respawned once; a second failure degrades to in-process
  execution, as do sandboxes without fork/semaphores.
* Workers receive **compact chunk payloads**: each chunk carries its
  referenced jobs once (shards addressed by job index), and shards of
  one multicore job are dealt round-robin across chunks so they are
  never serialised onto one worker.
* Workers memoise deterministic operand generation and compiled
  traces by content identity (see :mod:`repro.eval.memo`), so sweeps
  that vary only the schedule or shard fan-out of one job stop
  redoing identical work.  Memoisation is bit-exact: the memoised
  values are pure functions of the key.

Cache rules
-----------
* Location: ``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/sim``.
* Key: sha256 over the canonical JSON of the job plus
  :data:`CACHE_SCHEMA`; bump :data:`CACHE_SCHEMA` whenever a simulator
  change alters results, or delete the cache directory.
* One compact JSON file per job, written atomically (temp file +
  rename), so concurrent workers and concurrent engine processes
  never interleave partial files.  Unreadable/corrupted entries count
  as misses and are re-simulated and rewritten.
* Additionally an **append-only index** (``pack/index.jsonl``: one
  manifest line of key -> segment/offset/size/backend over packed
  result segments) makes the warm path a seek+read instead of a
  file-open-plus-parse, with an in-memory LRU in front of it.  The
  per-file layout stays authoritative (fallback and migration
  source); ``$REPRO_CACHE_INDEX=0`` disables the index,
  ``$REPRO_CACHE_LRU`` caps the in-memory LRU (default 256 entries,
  ``0`` disables it).

Environment knobs (read when the default engine is built):
``REPRO_JOBS`` (worker processes; ``0`` = one per CPU, default ``1``),
``REPRO_NO_CACHE`` (any non-empty value disables the disk cache),
``REPRO_POOL_IDLE``, ``REPRO_CACHE_INDEX``, ``REPRO_CACHE_LRU`` and
``REPRO_WORKER_MEMO`` (see above / :mod:`repro.eval.memo`).
``REPRO_BACKEND`` selects the timing backend when a job is built
without an explicit ``backend=`` (see :mod:`repro.arch.timing`).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.arch.config import ProcessorConfig
from repro.arch.stats import ExecutionStats
from repro.arch.timing import resolve_backend
from repro.errors import EngineError
from repro.eval.memo import canonical, content_key, worker_memo
from repro.eval.planner import plan_batch
from repro.eval.runner import (
    CSR_KERNEL,
    KernelRun,
    ShardRun,
    merge_shard_runs,
    run_csr,
    run_csr_shard,
    run_spmm,
    run_spmm_shard,
)
from repro.kernels.builder import KernelOptions
from repro.kernels.compiler import Schedule
from repro.nn.models import get_model
from repro.nn.workload import ScalePolicy, make_layer_workload, make_workload

#: Backwards-compatible alias — the canonicaliser moved to
#: :mod:`repro.eval.memo` so the runner's memo keys can share it.
_canonical = canonical

#: Bump whenever a simulator/workload change invalidates cached results.
#: Schema 2: timing backends — the backend is part of the job identity,
#: so cached ``detailed`` results can never answer ``compressed-replay``
#: runs (or vice versa).
#: Schema 3: schedule-driven kernel compiler — the full ``Schedule``
#: (including vlmax and B-tile residency, which the legacy
#: ``KernelOptions`` cannot express) joins the job identity, so the
#: autotuner's sweep points can never alias each other.
#: Schema 4: multi-core sharded simulation — ``Schedule`` grew
#: ``cores``/``shard`` fields (hashed via the schedule), and multicore
#: results carry merged makespan stats that single-core entries must
#: never answer.
#: Schema 5: batch-replay + analytic-sampled backends — the replay
#: bracket's pricing changed (pooled probes, regressed row-miss slope,
#: lead/trail/chunk defaults), so compressed-replay cycles differ from
#: schema 4; analytic jobs additionally fold the active calibration
#: table's digest into the hash, so a refit can never be answered by
#: stale predictions.
#: (The packed cache index and compact per-file encoding did NOT bump
#: the schema: the JSON payload is unchanged, only its framing is new.)
CACHE_SCHEMA = 5


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/sim``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sim"


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError:
        raise EngineError(f"{name}={raw!r} is not a number") from None


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        raise EngineError(f"{name}={raw!r} is not an integer") from None


# ======================================================================
# Jobs
# ======================================================================
@dataclass(frozen=True)
class SimJob:
    """One simulation, described by value (no arrays — workers rebuild
    the operands deterministically from this spec, and the spec is what
    gets content-hashed for the disk cache).

    The workload comes from exactly one source: a named CNN layer
    (``model``/``layer``/``policy``) or an explicit synthetic GEMM
    (``shape``/``seed``).
    """

    kernel: str
    nm: tuple[int, int]
    options: KernelOptions = KernelOptions()
    config: ProcessorConfig = field(
        default_factory=ProcessorConfig.scaled_default)
    verify: bool = True
    #: Timing backend name (part of the cache identity: a detailed
    #: result must never be served for a compressed-replay job).
    #: ``None`` resolves via ``$REPRO_BACKEND``, default ``detailed``.
    backend: str | None = None
    # -- workload source A: a (scaled) CNN layer GEMM.  The policy is
    # carried by value, so custom (unregistered) policies work and two
    # policies sharing a name can never alias in the cache.
    model: str | None = None
    layer: str | None = None
    policy: ScalePolicy | None = None
    # -- workload source B: an explicit synthetic GEMM
    shape: tuple[int, int, int] | None = None  #: (rows, k, n)
    seed: int | None = None
    #: Full kernel schedule (part of the cache identity).  ``None``
    #: lifts ``options``; when given, ``options`` is overwritten with
    #: its legacy projection so the two can never disagree in the hash.
    schedule: Schedule | None = None

    def __post_init__(self):
        # resolve (and validate) the backend eagerly so the content
        # hash always sees a concrete name, however the job was built
        object.__setattr__(self, "backend", resolve_backend(self.backend))
        if self.schedule is None:
            # options may itself be a full Schedule (direct construction
            # mirrors the classmethods): promote it verbatim so
            # vlmax/b_residency are never silently dropped
            if isinstance(self.options, Schedule):
                object.__setattr__(self, "schedule", self.options)
            else:
                object.__setattr__(self, "schedule",
                                   Schedule.from_options(self.options))
        object.__setattr__(self, "options", self.schedule.to_options())
        if self.schedule.shard is not None:
            raise EngineError(
                "SimJob describes a whole kernel execution; shard "
                "selection (schedule.shard) is an engine-internal "
                "execution detail — set cores=N and leave shard=None")
        layer_src = (self.model, self.layer, self.policy)
        shape_src = (self.shape, self.seed)
        if not ((all(v is not None for v in layer_src)
                 and all(v is None for v in shape_src))
                or (all(v is None for v in layer_src)
                    and all(v is not None for v in shape_src))):
            raise EngineError(
                "SimJob needs exactly one workload source: either "
                "model+layer+policy or shape+seed")

    @staticmethod
    def _split_options(options, schedule):
        """Let ``options`` carry a full Schedule (the tuner hands its
        sweep points straight to the job constructors)."""
        if isinstance(options, Schedule):
            if schedule is not None and schedule != options:
                raise EngineError(
                    "conflicting schedules: options carries a Schedule "
                    "that differs from schedule=")
            return KernelOptions(), options
        return options or KernelOptions(), schedule

    @classmethod
    def for_layer(cls, model: str, layer: str, nm: tuple[int, int],
                  policy: ScalePolicy, kernel: str,
                  options: KernelOptions | Schedule | None = None,
                  config: ProcessorConfig | None = None,
                  verify: bool = True,
                  backend: str | None = None,
                  schedule: Schedule | None = None) -> "SimJob":
        options, schedule = cls._split_options(options, schedule)
        return cls(kernel=kernel, nm=tuple(nm), options=options,
                   config=config or ProcessorConfig.scaled_default(),
                   verify=verify, backend=backend,
                   model=model, layer=layer, policy=policy,
                   schedule=schedule)

    @classmethod
    def for_shape(cls, rows: int, k: int, n: int, nm: tuple[int, int],
                  kernel: str, seed: int = 0,
                  options: KernelOptions | Schedule | None = None,
                  config: ProcessorConfig | None = None,
                  verify: bool = True,
                  backend: str | None = None,
                  schedule: Schedule | None = None) -> "SimJob":
        options, schedule = cls._split_options(options, schedule)
        return cls(kernel=kernel, nm=tuple(nm), options=options,
                   config=config or ProcessorConfig.scaled_default(),
                   verify=verify, backend=backend,
                   shape=(rows, k, n), seed=seed, schedule=schedule)


def job_hash(job: SimJob) -> str:
    """Stable content hash of a job (identical across processes)."""
    payload = {"schema": CACHE_SCHEMA, "job": _canonical(job)}
    if job.backend == "analytic-sampled":
        # an analytic prediction is a function of the calibration table,
        # not just the job: refitting must invalidate cached predictions
        from repro.analytic.calibration import active_digest
        payload["calibration"] = active_digest()
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def operand_identity(job: SimJob) -> str:
    """Content identity of a job's deterministic operand generation.

    Deliberately *narrower* than :func:`job_hash`: two jobs that differ
    only in schedule (beyond ``tile_rows``, which pads K), backend,
    kernel or config share their (A, B) operands — the worker-side memo
    keys on this, so tuner sweeps and shard fan-outs of one workload
    generate the operands once per process.
    """
    return content_key({
        "model": job.model, "layer": job.layer,
        "policy": canonical(job.policy),
        "nm": list(job.nm),
        "shape": list(job.shape) if job.shape is not None else None,
        "seed": job.seed,
        "tile_rows": job.schedule.tile_rows,
    })


def trace_identity(job: SimJob) -> str:
    """Content identity of a job's staged-operand layout.

    Staging is deterministic (a fresh simulated memory allocates
    sequentially), so the compiled trace is a pure function of
    (operands, config, kernel, schedule); the runner keys its per-worker
    trace memo on this identity plus the kernel and shard schedule.
    """
    return content_key({"operands": operand_identity(job),
                        "config": canonical(job.config)})


def _build_operands(job: SimJob):
    if job.model is not None:
        layer = next((l for l in get_model(job.model)
                      if l.name == job.layer), None)
        if layer is None:
            raise EngineError(
                f"model {job.model!r} has no layer {job.layer!r}")
        workload = make_layer_workload(layer, *job.nm, policy=job.policy,
                                       tile_rows=job.schedule.tile_rows)
        a, b = workload.a, workload.b
    else:
        rows, k, n_cols = job.shape
        rng = np.random.default_rng(job.seed)
        a, b = make_workload(rows, k, n_cols, *job.nm, rng,
                             tile_rows=job.schedule.tile_rows)
    # memoised operands are shared across runs: freeze the dense side so
    # an accidental in-place mutation fails loudly instead of silently
    # corrupting every later run of the same workload
    b.setflags(write=False)
    return a, b


def job_operands(job: SimJob):
    """Rebuild the (A, B) operands of a job deterministically.

    Memoised per process by :func:`operand_identity` — callers must
    treat the returned arrays as read-only."""
    return worker_memo("operands", 8).get(
        operand_identity(job), lambda: _build_operands(job))


def execute_job(job: SimJob) -> KernelRun:
    """Run one job to completion (multicore jobs fan in sequentially).

    This is the whole-job worker entry point; the engine's pool path
    additionally shards multicore jobs across workers via
    :func:`execute_shard_job` + :func:`finish_multicore_job`, with
    bit-identical results.
    """
    a, b = job_operands(job)
    memo_key = trace_identity(job)
    if job.kernel == CSR_KERNEL:
        return run_csr(a, b, config=job.config, verify=job.verify,
                       backend=job.backend, schedule=job.schedule,
                       memo_key=memo_key)
    return run_spmm(a, b, job.kernel, schedule=job.schedule,
                    config=job.config, verify=job.verify,
                    backend=job.backend, memo_key=memo_key)


def execute_shard_job(job: SimJob, shard: int) -> ShardRun:
    """Run one core's shard of a multicore job (worker entry point)."""
    a, b = job_operands(job)
    memo_key = trace_identity(job)
    if job.kernel == CSR_KERNEL:
        return run_csr_shard(a, b, job.schedule, shard, config=job.config,
                             backend=job.backend, memo_key=memo_key)
    return run_spmm_shard(a, b, job.kernel, job.schedule, shard,
                          config=job.config, backend=job.backend,
                          memo_key=memo_key)


def finish_multicore_job(job: SimJob, shards) -> KernelRun:
    """Merge a multicore job's shard results (stitch C, verify, merge
    per-core cycle streams into makespan + aggregated counters)."""
    a = b = None
    if job.verify:
        a, b = job_operands(job)
    return merge_shard_runs(job.kernel, shards, job.backend,
                            a=a, b=b, verify=job.verify)


def _execute_task(task) -> "KernelRun | ShardRun":
    """In-process entry point: a task is (job, shard) with shard=None
    meaning the whole job."""
    job, shard = task
    if shard is None:
        return execute_job(job)
    return execute_shard_job(job, shard)


def _execute_chunk(jobs, tasks):
    """Pool entry point: run one chunk of (job-index, shard) tasks
    against the chunk's deduplicated job table.

    The payload is compact by construction — each referenced job is
    pickled once per chunk however many of its shards the chunk holds —
    and the reply leads with the worker's pid so the engine can record
    where each shard actually ran (``ExperimentEngine.last_dispatch``).
    """
    return os.getpid(), [_execute_task((jobs[index], shard))
                         for index, shard in tasks]


def _worker_ping(linger: float) -> int:
    """Pool warm-up probe: hold the worker briefly so concurrent pings
    fan out across distinct processes, then report the pid."""
    time.sleep(linger)
    return os.getpid()


def _chunk_tasks(jobs, tasks, n_chunks):
    """Deal ``tasks`` (``(job_index, shard)`` pairs) round-robin into at
    most ``n_chunks`` compact chunk payloads.

    Shards of one multicore job occupy consecutive task slots, so the
    round-robin deal puts them in distinct chunks whenever ``n_chunks``
    is at least the job's core count — the pool then simulates them on
    distinct workers instead of serialising them through one.  Each
    payload is ``(chunk_jobs, chunk_tasks, originals)``: the jobs the
    chunk references (each exactly once), the tasks re-indexed against
    that local table, and the original tasks for reassembly.
    """
    dealt = [[] for _ in range(max(1, n_chunks))]
    for position, task in enumerate(tasks):
        dealt[position % len(dealt)].append(task)
    payloads = []
    for chunk in dealt:
        if not chunk:
            continue
        local_index: dict[int, int] = {}
        chunk_jobs = []
        chunk_tasks = []
        for job_index, shard in chunk:
            if job_index not in local_index:
                local_index[job_index] = len(chunk_jobs)
                chunk_jobs.append(jobs[job_index])
            chunk_tasks.append((local_index[job_index], shard))
        payloads.append((tuple(chunk_jobs), tuple(chunk_tasks),
                         tuple(chunk)))
    return payloads


# ======================================================================
# On-disk result cache
# ======================================================================
#: Advisory lockfile guarding offline cache maintenance (lives inside
#: the cache root, outside the ``xx/`` entry shards and ``pack/``).
CACHE_LOCK_NAME = ".lock"


def acquire_cache_lock(root: Path, exclusive: bool = False):
    """Take the cache directory's advisory lock; returns a handle for
    :func:`release_cache_lock` (or ``None`` where unsupported).

    Online users of a cache directory (an :class:`~repro.serve.service.
    ExperimentService` for its whole lifetime) hold the lock *shared* —
    many processes may store into one cache concurrently, that is a
    supported sharing model.  Offline maintenance
    (:meth:`ResultCache.vacuum`) takes it *exclusive*, non-blocking:
    if any live holder exists the vacuum fails with a clean
    :class:`EngineError` instead of racing concurrent manifest appends.

    On platforms without ``fcntl`` (or filesystems rejecting ``flock``)
    the lock degrades to a no-op ``None`` handle — the historical,
    unguarded behaviour.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-posix
        return None
    root = Path(root)
    try:
        root.mkdir(parents=True, exist_ok=True)
        handle = open(root / CACHE_LOCK_NAME, "a+")
    except OSError:
        return None
    try:
        if exclusive:
            try:
                fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                handle.close()
                raise EngineError(
                    f"cache {root} is in use (another process holds "
                    f"{root / CACHE_LOCK_NAME}, e.g. a live experiment "
                    "server): stop it before running offline "
                    "maintenance like `repro cache --vacuum`") from None
        else:
            fcntl.flock(handle, fcntl.LOCK_SH)
    except EngineError:
        raise
    except OSError:  # pragma: no cover - exotic filesystems
        handle.close()
        return None
    return handle


def release_cache_lock(handle) -> None:
    """Release a lock from :func:`acquire_cache_lock` (None-safe)."""
    if handle is not None:
        try:
            handle.close()  # closing the fd drops the flock
        except OSError:  # pragma: no cover
            pass


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultCache:
    """Content-addressed store of :class:`KernelRun` results.

    Three layers, fastest first:

    * an in-memory LRU of decoded runs (``$REPRO_CACHE_LRU`` entries,
      default 256) — repeat hits cost a dict lookup;
    * an append-only **packed index**: per-process segment files under
      ``pack/`` holding concatenated compact-JSON payloads, plus one
      shared ``pack/index.jsonl`` manifest of
      key -> segment/offset/size/backend, appended a line at a time —
      a warm hit is one seek+read, and :meth:`load_many` batches a
      whole key set per segment;
    * the original one-file-per-key layout — still written on every
      :meth:`store` (atomically, so it stays safe under concurrent
      engines), still readable on its own (``$REPRO_CACHE_INDEX=0``),
      and the migration source: a per-file hit is appended to the
      index so the next load is indexed.
    """

    def __init__(self, root: Path | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.index_enabled = os.environ.get("REPRO_CACHE_INDEX", "1") != "0"
        self._lru_capacity = max(0, _env_int("REPRO_CACHE_LRU", 256))
        self._lru: OrderedDict[str, KernelRun] = OrderedDict()
        #: guards the LRU's compound update sequences — the serve layer
        #: probes the cache from the event-loop thread while the
        #: dispatcher thread stores results into the same instance
        self._lru_lock = threading.Lock()
        self._index: dict[str, tuple[str, int, int, str]] | None = None
        self._segment: str | None = None  #: this process's pack segment

    # -- paths ---------------------------------------------------------
    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def pack_dir(self) -> Path:
        return self.root / "pack"

    @property
    def manifest_path(self) -> Path:
        return self.pack_dir / "index.jsonl"

    # -- the packed index ----------------------------------------------
    def _load_index(self) -> dict[str, tuple[str, int, int, str]]:
        """The manifest, parsed once per cache instance (later stores
        through this instance keep it current; other processes' appends
        are picked up by the per-file fallback)."""
        if self._index is None:
            index: dict[str, tuple[str, int, int, str]] = {}
            if self.index_enabled:
                try:
                    lines = self.manifest_path.read_bytes().splitlines()
                except OSError:
                    lines = []
                for line in lines:
                    try:
                        rec = json.loads(line)
                        index[rec["k"]] = (rec["s"], int(rec["o"]),
                                           int(rec["n"]), rec["b"])
                    except (ValueError, KeyError, TypeError):
                        continue  # torn/corrupt line: skip, don't fail
            self._index = index
        return self._index

    def _append_index(self, key: str, blob: bytes, backend: str) -> None:
        """Append one result to this process's segment + the manifest.

        Segments are per-process (pid + random suffix), so offsets are
        race-free; the manifest append is a single small O_APPEND write.
        Failures are swallowed — the index is an accelerator, the
        per-file layout stays authoritative.
        """
        if not self.index_enabled:
            return
        try:
            self.pack_dir.mkdir(parents=True, exist_ok=True)
            if self._segment is None:
                self._segment = (f"{os.getpid():x}-"
                                 f"{os.urandom(4).hex()}.seg")
            segment_path = self.pack_dir / self._segment
            with open(segment_path, "ab") as handle:
                offset = handle.tell()
                handle.write(blob)
            record = {"k": key, "s": self._segment, "o": offset,
                      "n": len(blob), "b": backend}
            line = json.dumps(record, sort_keys=True,
                              separators=(",", ":")) + "\n"
            with open(self.manifest_path, "ab") as handle:
                handle.write(line.encode())
            self._load_index()[key] = (self._segment, offset,
                                       len(blob), backend)
        except OSError:
            pass

    def _decode(self, payload) -> KernelRun:
        if payload["schema"] != CACHE_SCHEMA:
            raise ValueError("stale cache schema")
        stats = ExecutionStats(**payload["stats"])
        return KernelRun(kernel=payload["kernel"], stats=stats,
                         verified=payload["verified"],
                         backend=payload["backend"])

    def _lru_put(self, key: str, run: KernelRun) -> None:
        if self._lru_capacity <= 0:
            return
        with self._lru_lock:
            self._lru[key] = run
            self._lru.move_to_end(key)
            while len(self._lru) > self._lru_capacity:
                self._lru.popitem(last=False)

    def _lru_get(self, key: str) -> KernelRun | None:
        with self._lru_lock:
            run = self._lru.get(key)
            if run is not None:
                self._lru.move_to_end(key)
            return run

    def _load_indexed(self, key: str) -> KernelRun | None:
        entry = self._load_index().get(key)
        if entry is None:
            return None
        segment, offset, size, _ = entry
        try:
            with open(self.pack_dir / segment, "rb") as handle:
                handle.seek(offset)
                blob = handle.read(size)
            return self._decode(json.loads(blob))
        except (OSError, ValueError, TypeError, KeyError):
            # truncated segment / stale manifest: fall back to per-file
            self._load_index().pop(key, None)
            return None

    def _load_file(self, key: str) -> KernelRun | None:
        """The per-file fallback (and migration source): a hit is
        re-appended to the index so the next load is one seek+read."""
        path = self.path(key)
        try:
            payload = json.loads(path.read_text())
            run = self._decode(payload)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, TypeError, KeyError):
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if self.index_enabled and key not in self._load_index():
            blob = json.dumps(payload, sort_keys=True,
                              separators=(",", ":")).encode()
            self._append_index(key, blob, run.backend)
        return run

    # -- public API ----------------------------------------------------
    def load(self, key: str) -> KernelRun | None:
        """The cached run for ``key``, or None on a miss.

        A corrupted/unreadable entry falls through the layers (LRU ->
        index -> per-file); only when every layer misses is the job
        re-simulated and rewritten.
        """
        run = self._lru_get(key)
        if run is not None:
            return run
        run = self._load_indexed(key)
        if run is None:
            run = self._load_file(key)
        if run is not None:
            self._lru_put(key, run)
        return run

    def load_many(self, keys) -> dict[str, KernelRun]:
        """Batched :meth:`load`: every hit among ``keys``.

        Indexed entries are grouped per segment so each segment is
        opened once and read in offset order; the remainder falls back
        to per-file loads.  Misses are simply absent from the result.
        """
        found: dict[str, KernelRun] = {}
        misses: list[str] = []
        for key in dict.fromkeys(keys):
            run = self._lru_get(key)
            if run is not None:
                found[key] = run
            else:
                misses.append(key)
        index = self._load_index()
        by_segment: dict[str, list[tuple[int, int, str]]] = {}
        rest: list[str] = []
        for key in misses:
            entry = index.get(key)
            if entry is None:
                rest.append(key)
            else:
                segment, offset, size, _ = entry
                by_segment.setdefault(segment, []).append(
                    (offset, size, key))
        for segment, wanted in by_segment.items():
            try:
                with open(self.pack_dir / segment, "rb") as handle:
                    for offset, size, key in sorted(wanted):
                        handle.seek(offset)
                        blob = handle.read(size)
                        run = self._decode(json.loads(blob))
                        found[key] = run
                        self._lru_put(key, run)
            except (OSError, ValueError, TypeError, KeyError):
                # drop this segment's survivors to the per-file path
                rest.extend(key for _, _, key in wanted
                            if key not in found)
        for key in rest:
            run = self._load_file(key)
            if run is not None:
                found[key] = run
                self._lru_put(key, run)
        return found

    def entries(self) -> list[Path]:
        """Every per-file cache entry currently on disk (sorted)."""
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.glob("*/*.json")
                      if p.parent.name != "pack")

    def usage(self) -> tuple[int, int]:
        """(distinct entry count, total bytes) of the on-disk cache.

        Counts keys reachable through either layout (after a
        :meth:`vacuum` an entry may live only in the packed index) and
        sums the bytes of both: per-file entries plus pack segments
        and manifest.
        """
        keys = {path.stem for path in self.entries()}
        keys |= set(self._load_index())
        size = 0
        paths = list(self.entries())
        if self.pack_dir.is_dir():
            paths.extend(p for p in self.pack_dir.iterdir()
                         if p.is_file())
        for path in paths:
            try:
                size += path.stat().st_size
            except OSError:
                continue
        return len(keys), size

    def indexed_count(self) -> int:
        """Entries reachable through the packed index."""
        return len(self._load_index())

    def backend_counts(self) -> dict[str, int]:
        """Entry count per timing backend (for ``repro cache``).

        Served from the index manifest (the backend rides in every
        manifest line); only entries the index has never seen need
        their JSON opened.  Unreadable entries are tallied under
        ``"?"`` rather than deleted — :meth:`load` handles eviction on
        actual use.
        """
        counts: dict[str, int] = {}
        index = self._load_index()
        indexed = {key: entry[3] for key, entry in index.items()}
        for backend in indexed.values():
            counts[backend] = counts.get(backend, 0) + 1
        for path in self.entries():
            if path.stem in indexed:
                continue  # already tallied through the manifest
            try:
                backend = json.loads(path.read_text())["backend"]
            except (OSError, ValueError, KeyError):
                backend = "?"
            counts[backend] = counts.get(backend, 0) + 1
        return dict(sorted(counts.items()))

    def clear(self) -> int:
        """Delete every cache entry (per-file layout, packed segments
        and manifest); returns how many entries were removed."""
        keys = {path.stem for path in self.entries()}
        keys |= set(self._load_index())
        for path in self.entries():
            try:
                path.unlink()
            except OSError:
                keys.discard(path.stem)
        shutil.rmtree(self.pack_dir, ignore_errors=True)
        self._index = {} if self._index is not None else None
        self._segment = None
        self._lru.clear()
        return len(keys)

    def vacuum(self) -> tuple[int, int]:
        """Compact the cache: one fresh pack segment, no redundancy.

        Rewrites every index-reachable result into a single new
        segment with a fresh manifest (dropping superseded manifest
        lines and dead bytes in abandoned segments), deletes the old
        segments, and unlinks per-file entries already adopted into
        the index — the index alone serves them afterwards (per-file
        entries the index has never seen are kept untouched).  This is
        an offline maintenance operation: the cache directory's
        advisory lock is taken exclusively for its duration, so a
        vacuum can never race a live :class:`~repro.serve.service.
        ExperimentService` (which holds the lock shared) — it fails
        with a clean :class:`EngineError` instead.

        Returns ``(files_removed, bytes_reclaimed)``.
        """
        if not self.index_enabled:
            return 0, 0
        lock = acquire_cache_lock(self.root, exclusive=True)
        try:
            return self._vacuum_locked()
        finally:
            release_cache_lock(lock)

    def _vacuum_locked(self) -> tuple[int, int]:
        self._index = None  # re-read the manifest, including appends
        index = dict(self._load_index())
        _, bytes_before = self.usage()
        old_segments = set()
        if self.pack_dir.is_dir():
            old_segments = {p.name for p in self.pack_dir.iterdir()
                            if p.name != self.manifest_path.name}
        # 1. copy every live blob into one fresh segment
        compacted: dict[str, tuple[str, int, int, str]] = {}
        new_segment = f"compact-{os.getpid():x}-{os.urandom(4).hex()}.seg"
        lines: list[str] = []
        offset = 0
        blobs: list[bytes] = []
        for key, (segment, start, size, backend) in index.items():
            try:
                with open(self.pack_dir / segment, "rb") as handle:
                    handle.seek(start)
                    blob = handle.read(size)
                self._decode(json.loads(blob))
            except (OSError, ValueError, TypeError, KeyError):
                continue  # unreadable: drop from the compacted index
            blobs.append(blob)
            compacted[key] = (new_segment, offset, len(blob), backend)
            lines.append(json.dumps(
                {"k": key, "s": new_segment, "o": offset,
                 "n": len(blob), "b": backend},
                sort_keys=True, separators=(",", ":")))
            offset += len(blob)
        removed = 0
        if compacted:
            self.pack_dir.mkdir(parents=True, exist_ok=True)
            with open(self.pack_dir / new_segment, "wb") as handle:
                handle.write(b"".join(blobs))
            atomic_write_text(self.manifest_path,
                              "\n".join(lines) + "\n")
        elif self.manifest_path.exists():
            atomic_write_text(self.manifest_path, "")
        # 2. drop the superseded segments
        for name in old_segments:
            try:
                (self.pack_dir / name).unlink()
                removed += 1
            except OSError:
                pass
        # 3. drop per-file entries the index now serves
        for path in self.entries():
            if path.stem not in compacted:
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._index = compacted
        self._segment = None  # future stores open a fresh segment
        _, bytes_after = self.usage()
        return removed, max(0, bytes_before - bytes_after)

    def store(self, key: str, job: SimJob, run: KernelRun) -> None:
        payload = {
            "schema": CACHE_SCHEMA,
            "job": _canonical(job),
            "kernel": run.kernel,
            "verified": run.verified,
            "backend": run.backend,
            "stats": _canonical(run.stats),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        atomic_write_text(self.path(key), blob)
        self._append_index(key, blob.encode(), run.backend)
        self._lru_put(key, run)


# ======================================================================
# Engine
# ======================================================================
@dataclass
class EngineCounters:
    """Cumulative accounting of how each requested job was satisfied."""

    simulated: int = 0   #: jobs actually executed on the simulator
    disk_hits: int = 0   #: jobs answered from the on-disk cache
    memo_hits: int = 0   #: jobs answered from the in-process memo
    #: dynamic instructions and wall-clock seconds spent inside the
    #: timing backends of freshly simulated jobs (cache hits cost
    #: nothing) — the ``repro bench`` throughput column.
    sim_instructions: int = 0
    sim_seconds: float = 0.0
    #: wall-clock spent serving batches that simulated *nothing*
    #: (memo/disk hits only) — the warm jobs/s denominator.
    warm_seconds: float = 0.0
    #: persistent-pool lifecycle: fresh spawns, respawns after a broken
    #: pool, and batches dispatched through the pool.  A repeated-batch
    #: workload that reuses the pool shows ``pool_spawns == 1`` with
    #: ``pool_batches`` counting every parallel batch.
    pool_spawns: int = 0
    pool_respawns: int = 0
    pool_batches: int = 0
    #: cold-job planner split: jobs priced by the in-process bulk
    #: analytic evaluator vs jobs executed through the pooled path
    #: (``bulk_jobs + pooled_jobs == simulated``).
    bulk_jobs: int = 0
    pooled_jobs: int = 0
    #: wall-clock seconds per cold-path stage (operands / compile /
    #: profile / price from the bulk evaluator, plus pooled execution
    #: and the batched result store).
    stage_seconds: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.simulated + self.disk_hits + self.memo_hits

    @property
    def throughput(self) -> float:
        """Simulated instructions per second of backend wall-clock.

        Guarded against zero/absent ``sim_seconds`` — a cold engine or
        an all-hits (simulation-free) run reports 0.0 rather than
        dividing by zero.
        """
        if self.sim_seconds <= 0.0:
            return 0.0
        return self.sim_instructions / self.sim_seconds

    @property
    def hit_rate(self) -> float:
        """Fraction of requested jobs served without simulating."""
        if self.total == 0:
            return 0.0
        return (self.disk_hits + self.memo_hits) / self.total

    @property
    def warm_rate(self) -> float:
        """Cache/memo hits served per second of warm batch time (0.0
        when no simulation-free batch has been timed yet)."""
        if self.warm_seconds <= 0.0:
            return 0.0
        return (self.disk_hits + self.memo_hits) / self.warm_seconds

    def snapshot(self) -> "EngineCounters":
        """A frozen copy of the current counts (for phase accounting,
        e.g. the per-layer tuner's sweep-vs-finalist split)."""
        return EngineCounters(
            simulated=self.simulated,
            disk_hits=self.disk_hits,
            memo_hits=self.memo_hits,
            sim_instructions=self.sim_instructions,
            sim_seconds=self.sim_seconds,
            warm_seconds=self.warm_seconds,
            pool_spawns=self.pool_spawns,
            pool_respawns=self.pool_respawns,
            pool_batches=self.pool_batches,
            bulk_jobs=self.bulk_jobs,
            pooled_jobs=self.pooled_jobs,
            stage_seconds=dict(self.stage_seconds))

    def since(self, start: "EngineCounters") -> "EngineCounters":
        """The counts accumulated after ``start`` was snapshotted."""
        return EngineCounters(
            simulated=self.simulated - start.simulated,
            disk_hits=self.disk_hits - start.disk_hits,
            memo_hits=self.memo_hits - start.memo_hits,
            sim_instructions=self.sim_instructions - start.sim_instructions,
            sim_seconds=self.sim_seconds - start.sim_seconds,
            warm_seconds=self.warm_seconds - start.warm_seconds,
            pool_spawns=self.pool_spawns - start.pool_spawns,
            pool_respawns=self.pool_respawns - start.pool_respawns,
            pool_batches=self.pool_batches - start.pool_batches,
            bulk_jobs=self.bulk_jobs - start.bulk_jobs,
            pooled_jobs=self.pooled_jobs - start.pooled_jobs,
            stage_seconds={
                name: seconds - start.stage_seconds.get(name, 0.0)
                for name, seconds in self.stage_seconds.items()})

    def add_stage_seconds(self, stages: dict) -> None:
        """Fold one batch's per-stage seconds into the running totals."""
        for name, seconds in stages.items():
            self.stage_seconds[name] = (self.stage_seconds.get(name, 0.0)
                                        + seconds)


class ExperimentEngine:
    """Deduplicating, memoising, parallel executor of :class:`SimJob`s.

    ``jobs`` is the worker-process count: ``1`` (default) runs
    in-process, ``0``/``None`` means one worker per CPU.  ``cache``
    toggles the on-disk result cache at ``cache_dir``.  ``pool_idle``
    is the idle-reap timeout of the persistent worker pool in seconds
    (``None`` reads ``$REPRO_POOL_IDLE``, default 60; ``<= 0`` keeps
    the pool alive until :meth:`shutdown`).  ``bulk`` toggles the
    cold-job planner's in-process bulk analytic path (``None`` reads
    ``$REPRO_BULK``, default on; the split is observationally
    identical either way — this is the escape hatch).
    """

    def __init__(self, jobs: int | None = 1, cache: bool = True,
                 cache_dir: Path | None = None,
                 pool_idle: float | None = None,
                 bulk: bool | None = None):
        self.jobs = int(jobs) if jobs else (os.cpu_count() or 1)
        self.cache = ResultCache(cache_dir) if cache else None
        if bulk is None:
            bulk = os.environ.get("REPRO_BULK", "1") != "0"
        self.bulk = bool(bulk)
        self.counters = EngineCounters()
        self.pool_idle = (pool_idle if pool_idle is not None
                          else _env_float("REPRO_POOL_IDLE", 60.0))
        #: ``(job_index, shard, worker_pid)`` of every task the last
        #: pool batch dispatched (observability: tests assert shards of
        #: one multicore job landed on distinct workers).
        self.last_dispatch: list[tuple[int, int | None, int]] = []
        self._memo: dict[str, KernelRun] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._idle_timer: threading.Timer | None = None
        self._pool_unavailable = False
        #: serialises :meth:`run` so concurrent submitters (the serve
        #: layer's dispatcher thread plus direct callers) never
        #: interleave a batch's execute/store sequence
        self._run_lock = threading.RLock()
        #: guards counter updates — :meth:`probe` runs on the event
        #: loop thread while :meth:`run` executes in a worker thread
        self._counters_lock = threading.Lock()

    @classmethod
    def from_env(cls, jobs: int | None = None,
                 cache: bool | None = None,
                 bulk: bool | None = None) -> "ExperimentEngine":
        """Build an engine from ``REPRO_JOBS``/``REPRO_NO_CACHE``/
        ``REPRO_BULK``, with explicit arguments taking precedence."""
        if jobs is None:
            raw = os.environ.get("REPRO_JOBS", "1") or "1"
            try:
                jobs = int(raw)
            except ValueError:
                raise EngineError(
                    f"REPRO_JOBS={raw!r} is not an integer") from None
        if cache is None:
            cache = not os.environ.get("REPRO_NO_CACHE")
        return cls(jobs=jobs, cache=cache, bulk=bulk)

    # -- persistent pool lifecycle -------------------------------------
    def _acquire_pool(self) -> ProcessPoolExecutor | None:
        """The persistent pool, spawning it lazily; None when worker
        processes cannot be created in this environment."""
        with self._pool_lock:
            if self._idle_timer is not None:
                self._idle_timer.cancel()
                self._idle_timer = None
            if self._pool is None:
                if self._pool_unavailable:
                    return None
                try:
                    self._pool = ProcessPoolExecutor(max_workers=self.jobs)
                except (OSError, ImportError):
                    # sandboxes without fork/semaphores: remember, so
                    # later batches skip straight to in-process
                    self._pool_unavailable = True
                    return None
                self.counters.pool_spawns += 1
            return self._pool

    def _release_pool(self) -> None:
        """Arm the idle-reap timer after a batch (the next batch
        disarms it; firing reaps the pool until it is needed again)."""
        with self._pool_lock:
            if self._pool is None or self.pool_idle <= 0:
                return
            timer = threading.Timer(
                self.pool_idle, lambda: self._reap_idle(timer))
            timer.daemon = True
            self._idle_timer = timer
            timer.start()

    def _reap_idle(self, timer: threading.Timer) -> None:
        with self._pool_lock:
            if self._idle_timer is not timer:
                return  # superseded by a newer batch — not idle
            self._idle_timer = None
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _discard_pool(self) -> None:
        """Drop a broken pool so the next acquisition respawns."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def shutdown(self, wait: bool = True) -> None:
        """Shut the persistent pool down (idempotent; the next parallel
        batch would lazily respawn it)."""
        with self._pool_lock:
            if self._idle_timer is not None:
                self._idle_timer.cancel()
                self._idle_timer = None
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)

    def warm_pool(self, linger: float = 0.05) -> list[int]:
        """Eagerly spawn the pool and fan one ping per worker; returns
        the worker pids (empty when the pool is unavailable).  Useful
        before latency-sensitive batches and in dispatch tests."""
        if self.jobs <= 1:
            return []
        pool = self._acquire_pool()
        if pool is None:
            return []
        try:
            futures = [pool.submit(_worker_ping, linger)
                       for _ in range(self.jobs)]
            return [future.result() for future in futures]
        except (BrokenProcessPool, OSError):
            self._discard_pool()
            return []
        finally:
            self._release_pool()

    def __del__(self):  # best-effort: tests build many engines
        try:
            self.shutdown(wait=False)
        except Exception:
            pass

    # -- execution -----------------------------------------------------
    def probe(self, jobs) -> "list[KernelRun | None]":
        """Cache-only lookup: the warm layers of the dispatch path
        (in-process memo -> cache LRU -> packed index -> per-file),
        never simulating.  Misses come back as ``None``.

        Hits are promoted into the in-process memo and counted exactly
        as :meth:`run` would count them, so a service that answers
        warm requests straight off :meth:`probe` (the serve layer's
        microsecond path) keeps the engine's accounting coherent.
        Safe to call concurrently with :meth:`run` from another
        thread.
        """
        start = time.perf_counter()
        jobs = list(jobs)
        keys = [job_hash(job) for job in jobs]
        fetched: dict[str, KernelRun] = {}
        if self.cache is not None:
            unknown = [key for key in dict.fromkeys(keys)
                       if key not in self._memo]
            if unknown:
                fetched = self.cache.load_many(unknown)
        results: list[KernelRun | None] = []
        memo_hits = disk_hits = 0
        for key in keys:
            run = self._memo.get(key)
            if run is not None:
                memo_hits += 1
            else:
                run = fetched.get(key)
                if run is not None:
                    disk_hits += 1
                    self._memo[key] = run
            results.append(run)
        with self._counters_lock:
            self.counters.memo_hits += memo_hits
            self.counters.disk_hits += disk_hits
            if memo_hits or disk_hits:
                self.counters.warm_seconds += time.perf_counter() - start
        return results

    def run(self, jobs) -> list[KernelRun]:
        """Run a batch of jobs; results arrive in submission order.

        Identical jobs (same content hash) within the batch are
        simulated once.  Disk-cache lookups for the whole batch are
        batched through :meth:`ResultCache.load_many`; hits are
        promoted into the in-process memo.  Reentrant: concurrent
        callers are serialised on an internal lock and counters are
        updated atomically.
        """
        with self._run_lock:
            return self._run_locked(list(jobs))

    def _run_locked(self, jobs: list[SimJob]) -> list[KernelRun]:
        start = time.perf_counter()
        keys = [job_hash(job) for job in jobs]
        fetched: dict[str, KernelRun] = {}
        if self.cache is not None:
            unknown = [key for key in dict.fromkeys(keys)
                       if key not in self._memo]
            if unknown:
                fetched = self.cache.load_many(unknown)
        pending: dict[str, SimJob] = {}
        memo_hits = disk_hits = 0
        for job, key in zip(jobs, keys):
            if key in self._memo:
                memo_hits += 1
                continue
            if key in pending:
                # duplicate within the batch: satisfied by the pending
                # job's single simulation, via the memo, at no cost
                memo_hits += 1
                continue
            cached = fetched.get(key)
            if cached is not None:
                disk_hits += 1
                self._memo[key] = cached
                continue
            pending[key] = job
        if pending:
            pending_jobs = list(pending.values())
            plan = plan_batch(pending_jobs, bulk_enabled=self.bulk)
            runs: list[KernelRun | None] = [None] * len(pending_jobs)
            stage_seconds: dict[str, float] = {}
            if plan.bulk:
                # imported lazily: the bulk evaluator pulls in the
                # analytic stack, which plain functional runs never need
                from repro.analytic.bulk import evaluate_bulk

                bulk_runs, bulk_stages = evaluate_bulk(
                    [pending_jobs[i] for i in plan.bulk])
                for index, run in zip(plan.bulk, bulk_runs):
                    runs[index] = run
                for name, seconds in bulk_stages.items():
                    stage_seconds[name] = (stage_seconds.get(name, 0.0)
                                           + seconds)
            if plan.pooled:
                t_pooled = time.perf_counter()
                pooled_runs = self._execute(
                    [pending_jobs[i] for i in plan.pooled])
                stage_seconds["pooled"] = (
                    stage_seconds.get("pooled", 0.0)
                    + time.perf_counter() - t_pooled)
                for index, run in zip(plan.pooled, pooled_runs):
                    runs[index] = run
            sim_instructions = sim_seconds = 0
            t_store = time.perf_counter()
            for key, job, run in zip(pending, pending.values(), runs):
                sim_instructions += run.stats.instructions
                sim_seconds += run.wall_seconds
                self._memo[key] = run
                if self.cache:
                    self.cache.store(key, job, run)
            stage_seconds["store"] = (stage_seconds.get("store", 0.0)
                                      + time.perf_counter() - t_store)
            with self._counters_lock:
                self.counters.simulated += len(pending)
                self.counters.sim_instructions += sim_instructions
                self.counters.sim_seconds += sim_seconds
                self.counters.memo_hits += memo_hits
                self.counters.disk_hits += disk_hits
                self.counters.bulk_jobs += len(plan.bulk)
                self.counters.pooled_jobs += len(plan.pooled)
                self.counters.add_stage_seconds(stage_seconds)
        else:
            with self._counters_lock:
                self.counters.memo_hits += memo_hits
                self.counters.disk_hits += disk_hits
                if memo_hits or disk_hits:
                    self.counters.warm_seconds += (time.perf_counter()
                                                   - start)
        return [self._memo[key] for key in keys]

    async def submit_async(self, jobs) -> list[KernelRun]:
        """Async-friendly submit hook: :meth:`run` on the running
        event loop's default thread executor.

        The coroutine awaits without blocking the loop, so an asyncio
        service (see :mod:`repro.serve`) can keep answering warm
        probes while a batch simulates; :meth:`run`'s internal lock
        makes overlapping submissions safe.
        """
        import asyncio

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.run, list(jobs))

    def _execute(self, jobs: list[SimJob]) -> list[KernelRun]:
        """Execute jobs, fanning multicore jobs out shard-by-shard.

        A job with ``schedule.cores = N > 1`` becomes N shard tasks, so
        the worker pool simulates the N cores truly in parallel (even
        for a single multicore job); the shard results are then merged
        back into one :class:`KernelRun` per job, bit-identical to the
        sequential in-process path.
        """
        tasks: list[tuple[int, int | None]] = []
        for index, job in enumerate(jobs):
            cores = job.schedule.cores
            if cores > 1:
                tasks.extend((index, shard) for shard in range(cores))
            else:
                tasks.append((index, None))
        self.last_dispatch = []
        outputs = None
        if self.jobs > 1 and len(tasks) > 1:
            outputs = self._dispatch(jobs, tasks)
        if outputs is None:
            outputs = [_execute_task((jobs[index], shard))
                       for index, shard in tasks]
        results: list[KernelRun | None] = [None] * len(jobs)
        shards: dict[int, list[ShardRun]] = {}
        for (index, shard), output in zip(tasks, outputs):
            if shard is None:
                results[index] = output
            else:
                shards.setdefault(index, []).append(output)
        for index, shard_runs in shards.items():
            results[index] = finish_multicore_job(jobs[index], shard_runs)
        return results

    def _dispatch(self, jobs, tasks):
        """Fan one batch of tasks across the persistent pool; None
        means "run in-process" (no pool, or it broke twice in a row).

        Chunks are dealt so shards of one multicore job never share a
        chunk (see :func:`_chunk_tasks`); a pool broken mid-batch is
        respawned once and the batch retried (execution is
        deterministic and results are stored only after the whole
        batch, so the retry is idempotent).
        """
        workers = min(self.jobs, len(tasks))
        fanout = max(job.schedule.cores for job in jobs)
        n_chunks = min(len(tasks), max(workers * 4, fanout))
        payloads = _chunk_tasks(jobs, tasks, n_chunks)
        for retry in (False, True):
            pool = self._acquire_pool()
            if pool is None:
                return None
            try:
                futures = [pool.submit(_execute_chunk, chunk_jobs,
                                       chunk_tasks)
                           for chunk_jobs, chunk_tasks, _ in payloads]
                replies = [future.result() for future in futures]
            except BrokenProcessPool:
                self._discard_pool()
                if retry:
                    return None
                self.counters.pool_respawns += 1
                continue
            except (OSError, ImportError):
                self._discard_pool()
                return None
            finally:
                self._release_pool()
            position = {task: i for i, task in enumerate(tasks)}
            outputs: list = [None] * len(tasks)
            for (_, _, originals), (pid, chunk_outputs) in zip(payloads,
                                                               replies):
                for original, output in zip(originals, chunk_outputs):
                    outputs[position[original]] = output
                    self.last_dispatch.append((*original, pid))
            self.counters.pool_batches += 1
            return outputs
        return None

    # -- reporting -----------------------------------------------------
    def summary(self) -> str:
        """One-line accounting, e.g. for the ``repro bench`` report."""
        c = self.counters
        where = str(self.cache.root) if self.cache else "disabled"
        speed = ""
        if c.simulated and c.sim_seconds > 0.0:
            speed = (f", {c.sim_instructions:,} instrs in "
                     f"{c.sim_seconds:.1f}s "
                     f"({c.throughput / 1e3:,.0f}k instr/s)")
        elif c.simulated == 0 and c.total:
            # fully-warm batch: instr/s would be a misleading zero —
            # report what actually happened (hit rate + warm serve rate)
            speed = f", {c.hit_rate:.0%} hit rate"
            if c.warm_rate > 0.0:
                speed += f" ({c.warm_rate:,.0f} warm jobs/s)"
        pool = ""
        if c.pool_spawns:
            pool = (f", pool {c.pool_spawns} spawn(s)/"
                    f"{c.pool_batches} batch(es)")
        split = ""
        if c.bulk_jobs or c.pooled_jobs:
            split = (f", split {c.bulk_jobs} bulk/"
                     f"{c.pooled_jobs} pooled/"
                     f"{c.disk_hits + c.memo_hits} warm")
            stages = [f"{name} {c.stage_seconds[name]:.2f}s"
                      for name in ("operands", "compile", "profile",
                                   "price", "pooled", "store")
                      if name in c.stage_seconds]
            if stages:
                split += f" [{' '.join(stages)}]"
        return (f"engine: {c.simulated} simulations, "
                f"{c.disk_hits} disk-cache hits, "
                f"{c.memo_hits} memo hits{speed}{split} "
                f"(workers {self.jobs}{pool}, cache {where})")


# ======================================================================
# Default (module-level) engine
# ======================================================================
_default_engine: ExperimentEngine | None = None


def get_engine() -> ExperimentEngine:
    """The process-wide default engine (built from env on first use)."""
    global _default_engine
    if _default_engine is None:
        _default_engine = ExperimentEngine.from_env()
    return _default_engine


def set_engine(engine: ExperimentEngine | None) -> ExperimentEngine | None:
    """Install (or, with None, reset) the default engine.

    The outgoing engine's persistent pool is shut down — reconfiguring
    must never leak worker processes.
    """
    global _default_engine
    if _default_engine is not None and _default_engine is not engine:
        _default_engine.shutdown(wait=False)
    _default_engine = engine
    return engine


def configure(jobs: int | None = None,
              cache: bool | None = None) -> ExperimentEngine:
    """Install a default engine from env + explicit overrides."""
    return set_engine(ExperimentEngine.from_env(jobs=jobs, cache=cache))
