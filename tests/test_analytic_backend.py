"""Tests for the analytic-sampled backend: exact static profiling,
calibration-table persistence/fitting, environment resolution, and the
validate_backend tolerance gate."""

import json

import numpy as np
import pytest

from repro.analytic.calibration import (
    FEATURE_NAMES,
    CalibrationTable,
    active_digest,
    active_table,
    fit_table,
    profile_trace,
    reset_cache,
)
from repro.analytic.validation import backend_tolerance, validate_backend
from repro.arch import DecoupledProcessor, ProcessorConfig
from repro.arch.timing import get_backend, get_backend_class
from repro.errors import CalibrationError
from repro.kernels import KernelOptions, get_trace_kernel, stage_spmm
from repro.nn.workload import make_workload

CFG = ProcessorConfig.scaled_default()


def build_trace(kernel, rows=32, k=64, n=32, nm=(1, 4), seed=3):
    rng = np.random.default_rng(seed)
    a, b = make_workload(rows, k, n, *nm, rng)
    proc = DecoupledProcessor(CFG)
    staged = stage_spmm(proc.mem, a, b)
    return proc, get_trace_kernel(kernel)(staged, KernelOptions())


# ----------------------------------------------------------------------
# static profile exactness
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", ["rowwise-spmm", "indexmac-spmm"])
def test_profile_counts_match_detailed_exactly(kernel):
    proc, trace = build_trace(kernel)
    profile = profile_trace(trace, CFG)
    detailed = get_backend("detailed").run(proc, trace)
    assert profile.instructions == detailed.stats.instructions
    assert profile.scalar_instructions == detailed.stats.scalar_instructions
    assert profile.vector_instructions == detailed.stats.vector_instructions
    assert profile.vector_loads == detailed.stats.vector_loads
    assert profile.vector_stores == detailed.stats.vector_stores
    assert profile.scalar_loads == detailed.stats.scalar_loads
    assert profile.scalar_stores == detailed.stats.scalar_stores
    assert profile.v2s_moves == detailed.stats.vector_to_scalar_moves
    assert profile.vindexmac == detailed.stats.vindexmac_count
    assert profile.vfmacc == detailed.stats.vfmacc_count
    assert profile.branches == detailed.stats.branches


def test_analytic_backend_reports_exact_counts_and_no_memory():
    proc, trace = build_trace("indexmac-spmm")
    ref_proc, ref_trace = build_trace("indexmac-spmm")
    detailed = get_backend("detailed").run(ref_proc, ref_trace)
    result = get_backend("analytic-sampled").run(proc, trace)
    assert result.stats.instructions == detailed.stats.instructions
    assert result.stats.vector_mem_instrs == detailed.stats.vector_mem_instrs
    # nothing executed: no cache traffic, no timed instructions, and the
    # result buffer is untouched (all zeros)
    assert result.stats.l2_misses == 0
    assert result.timed_instructions == 0
    assert result.stats.cycles > 0
    assert result.stats.extra["calibration"] == active_digest()


def test_analytic_traits():
    cls = get_backend_class("analytic-sampled")
    assert not cls.functional
    assert not cls.models_memory


# ----------------------------------------------------------------------
# calibration table
# ----------------------------------------------------------------------
def test_table_round_trips_through_json(tmp_path):
    weights = tuple(float(i) for i in range(len(FEATURE_NAMES)))
    table = CalibrationTable(weights=weights, fitted_on=("a", "b"),
                             residual=0.01)
    path = tmp_path / "table.json"
    table.save(path)
    loaded = CalibrationTable.load(path)
    assert loaded == table
    assert loaded.digest() == table.digest()


def test_table_rejects_wrong_width_and_wrong_features(tmp_path):
    with pytest.raises(CalibrationError):
        CalibrationTable(weights=(1.0, 2.0))
    payload = json.loads(CalibrationTable(
        weights=tuple(1.0 for _ in FEATURE_NAMES)).to_json())
    payload["features"] = ["bogus"] + payload["features"][1:]
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(CalibrationError):
        CalibrationTable.load(path)


def test_fit_table_recovers_a_linear_model():
    rng = np.random.default_rng(0)
    true = rng.uniform(1, 5, len(FEATURE_NAMES))
    samples = []
    for i in range(40):
        features = np.zeros(len(FEATURE_NAMES))
        features[0] = 1.0
        features[1:] = rng.uniform(0, 1000, len(FEATURE_NAMES) - 1)
        samples.append((f"s{i}", features, float(features @ true)))
    table = fit_table(samples)
    assert table.residual < 1e-9
    for sample_id, features, cycles in samples:
        assert table.predict(features) == pytest.approx(cycles)


def test_fit_table_needs_two_samples():
    with pytest.raises(CalibrationError):
        fit_table([("only", np.ones(len(FEATURE_NAMES)), 1.0)])


def test_env_selects_the_active_table(tmp_path, monkeypatch):
    custom = CalibrationTable(weights=tuple(
        2.0 for _ in FEATURE_NAMES))
    path = tmp_path / "custom.json"
    custom.save(path)
    monkeypatch.setenv("REPRO_CALIBRATION", str(path))
    reset_cache()
    try:
        assert active_table() == custom
        assert active_digest() == custom.digest()
    finally:
        monkeypatch.delenv("REPRO_CALIBRATION")
        reset_cache()


# ----------------------------------------------------------------------
# tolerance gate (uses the packaged default table)
# ----------------------------------------------------------------------
def test_validate_backend_gates_analytic_within_tolerance():
    rng = np.random.default_rng(0)
    a, b = make_workload(64, 64, 32, 1, 4, rng)
    report = validate_backend(a, b, "indexmac-spmm",
                              backend="analytic-sampled")
    assert report.tolerance == backend_tolerance("analytic-sampled")
    assert not report.functional and not report.models_memory
    assert report.counts_exact
    assert report.ok, report.summary()
    # per-job cost is O(static size): compression is in the thousands
    assert report.compression > 1000
