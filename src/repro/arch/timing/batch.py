"""Batch-replay: NumPy-vectorised replay of steady-loop middles.

``compressed-replay`` (the base class) already times only a bracket of
each steady loop, but still *executes* every skipped iteration one
instruction at a time through the Python functional core.  For large
matmul workloads that interpreter walk dominates wall-clock.

This backend replaces the per-instruction replay of a loop chunk with
three vectorised phases, and proves per chunk that the outcome is
identical to the sequential replay (falling back when it cannot):

1. **Probe.**  One iteration is replayed exactly (per-instruction).
   The integer-register deltas it produces are the candidate strides
   of the loop's induction variables.
2. **Batched execution.**  The remaining ``n`` iterations run as one
   NumPy program over an ``n``-wide batch axis: integer registers are
   ``(32, n)`` int64 rows seeded with the affine guess
   ``x1 + i * delta``, FP/vector registers broadcast their entry
   values, and every supported instruction updates all ``n`` lanes at
   once.  Loads gather from live memory; stores are staged.  Nothing
   architectural is modified yet.
3. **Verify + commit.**  The batch commits only if (a) every live-in
   integer register actually evolved affinely (exit == entry + delta
   in every lane), (b) every live-in FP/vector register was
   iteration-invariant (bitwise), and (c) no staged store overlaps any
   other store or any load's bytes.  Then stores scatter to memory,
   final-iteration register lanes commit, and the memory hierarchy
   replays the whole access stream through
   :meth:`~repro.arch.hierarchy.MemoryHierarchy.bulk_replay` — tags,
   LRU order, dirty bits and every hit/miss/row-buffer counter advance
   exactly as the sequential walk would have advanced them.

Because the conditions are *verified* per chunk rather than assumed, a
failed check merely falls back to the bit-exact sequential replay:
results, memory images and access counts are identical to
``compressed-replay`` by construction, and cycles follow the same
bracket arithmetic (identical when run with the same knobs).
"""

from __future__ import annotations

import numpy as np

from repro.arch.timing.compressed import (
    _SCALAR_LOAD_BYTES,
    _SCALAR_STORE_BYTES,
    CompressedReplayBackend,
)
from repro.isa.instructions import BRANCH_OPS, Op
from repro.isa.trace import summarize_nodes


class _BatchFallback(Exception):
    """The chunk cannot be replayed batched; use the sequential path."""


class _Program:
    """A compiled loop body: its summary plus per-instruction handlers."""

    __slots__ = ("summary", "ops", "failures")

    def __init__(self, summary, ops):
        self.summary = summary
        self.ops = ops
        self.failures = 0


# ======================================================================
# batched instruction handlers
#
# Each handler mutates a _BatchRun in place.  Semantics mirror
# repro.arch.functional.FunctionalCore exactly, with the batch (loop
# iteration) axis added: int64 rows wrap like to_signed64, int32/uint32
# casts wrap like _i32, and all FP arithmetic stays element-wise
# float32 so results are bitwise identical lane by lane.
# ======================================================================
_DISPATCH = {}


def _register(op):
    def deco(fn):
        _DISPATCH[op] = fn
        return fn
    return deco


def _nop(run, instr):
    return None


for _op in BRANCH_OPS:
    _DISPATCH[_op] = _nop


_INT_RR = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.MUL: lambda a, b: a * b,
    Op.SLL: lambda a, b: a << (b & 63),
    Op.SRA: lambda a, b: a >> (b & 63),
    Op.SRL: lambda a, b: (a.view(np.uint64)
                          >> (b & 63).view(np.uint64)).view(np.int64),
    Op.SLT: lambda a, b: a < b,
    Op.SLTU: lambda a, b: a.view(np.uint64) < b.view(np.uint64),
}


def _make_int_rr(fn):
    def handler(run, instr):
        result = fn(run.xb[instr.rs1], run.xb[instr.rs2])
        if instr.rd:
            run.xb[instr.rd] = result
    return handler


for _op, _fn in _INT_RR.items():
    _DISPATCH[_op] = _make_int_rr(_fn)

_MASK64 = (1 << 64) - 1

_INT_RI = {
    Op.ADDI: lambda a, i: a + i,
    Op.ANDI: lambda a, i: a & i,
    Op.ORI: lambda a, i: a | i,
    Op.XORI: lambda a, i: a ^ i,
    Op.SLLI: lambda a, i: a << i,
    Op.SRAI: lambda a, i: a >> i,
    Op.SRLI: lambda a, i: (a.view(np.uint64)
                           >> np.uint64(i)).view(np.int64),
    Op.SLTI: lambda a, i: a < i,
    Op.SLTIU: lambda a, i: a.view(np.uint64) < np.uint64(i & _MASK64),
}

_SHIFT_IMM_OPS = frozenset({Op.SLLI, Op.SRLI, Op.SRAI})


def _make_int_ri(fn):
    def handler(run, instr):
        result = fn(run.xb[instr.rs1], instr.imm)
        if instr.rd:
            run.xb[instr.rd] = result
    return handler


for _op, _fn in _INT_RI.items():
    _DISPATCH[_op] = _make_int_ri(_fn)


@_register(Op.LUI)
@_register(Op.AUIPC)  # pc-relative not used in trace mode (see functional)
def _lui(run, instr):
    value = instr.imm << 12
    if value & 0x80000000:
        value -= 1 << 32
    if instr.rd:
        run.xb[instr.rd] = value


_LOAD_VIEW = {
    Op.LB: np.int8, Op.LBU: np.uint8, Op.LH: np.dtype("<i2"),
    Op.LHU: np.dtype("<u2"), Op.LW: np.dtype("<i4"),
    Op.LWU: np.dtype("<u4"), Op.LD: np.dtype("<i8"),
}


def _make_scalar_load(op, size, view_dtype):
    def handler(run, instr):
        addrs = run.xb[instr.rs1] + instr.imm
        raw = run.gather(addrs, size, vector=False)
        if instr.rd:
            run.xb[instr.rd] = raw.view(view_dtype).ravel().astype(np.int64)
    return handler


for _op, _vd in _LOAD_VIEW.items():
    _DISPATCH[_op] = _make_scalar_load(_op, _SCALAR_LOAD_BYTES[_op], _vd)


@_register(Op.FLW)
def _flw(run, instr):
    addrs = run.xb[instr.rs1] + instr.imm
    raw = run.gather(addrs, 4, vector=False)
    run.fb[instr.rd] = raw.view(np.float32).ravel()


_STORE_CAST = {Op.SB: "<u1", Op.SH: "<u2", Op.SW: "<u4", Op.SD: "<i8"}


def _make_scalar_store(op, size, cast):
    def handler(run, instr):
        addrs = run.xb[instr.rs1] + instr.imm
        data = run.xb[instr.rs2].astype(cast).view(np.uint8)
        run.stage_store(addrs, size, data.reshape(run.n, size), vector=False)
    return handler


for _op, _cast in _STORE_CAST.items():
    _DISPATCH[_op] = _make_scalar_store(_op, _SCALAR_STORE_BYTES[_op], _cast)


@_register(Op.FSW)
def _fsw(run, instr):
    addrs = run.xb[instr.rs1] + instr.imm
    data = run.fb[instr.rs2].astype("<f4").view(np.uint8)
    run.stage_store(addrs, 4, data.reshape(run.n, 4), vector=False)


@_register(Op.VLE32)
def _vle32(run, instr):
    # copy: xb rows are written in place, and the recorded slot /
    # alias-check ranges must keep the address at access time
    addrs = run.xb[instr.rs1].copy()
    raw = run.gather(addrs, 4 * run.vl, vector=True)
    run.vb[instr.vd, :, :run.vl] = raw.view(np.uint32)
    run.v_defined.add(instr.vd)


@_register(Op.VSE32)
def _vse32(run, instr):
    addrs = run.xb[instr.rs1].copy()  # see _vle32
    data = np.ascontiguousarray(run.vb[instr.vd, :, :run.vl]).copy()
    run.stage_store(addrs, 4 * run.vl, data.view(np.uint8), vector=True)


_VX_I32 = {
    Op.VADD_VX: lambda a, s: a + s,
    Op.VMUL_VX: lambda a, s: a * s,
    Op.VSUB_VX: lambda a, s: a - s,
    Op.VRSUB_VX: lambda a, s: s - a,
    Op.VAND_VX: lambda a, s: a & s,
    Op.VOR_VX: lambda a, s: a | s,
    Op.VXOR_VX: lambda a, s: a ^ s,
    Op.VMIN_VX: np.minimum,
    Op.VMAX_VX: np.maximum,
}


def _make_vx_i32(fn):
    def handler(run, instr):
        vl = run.vl
        scalar = run.xb[instr.rs1].astype(np.int32)[:, None]
        i32 = run.vb_i32
        i32[instr.vd, :, :vl] = fn(i32[instr.vs2, :, :vl], scalar)
        run.v_defined.add(instr.vd)
    return handler


for _op, _fn in _VX_I32.items():
    _DISPATCH[_op] = _make_vx_i32(_fn)

_VX_U32 = {Op.VMINU_VX: np.minimum, Op.VMAXU_VX: np.maximum}


def _make_vx_u32(fn):
    def handler(run, instr):
        vl = run.vl
        scalar = run.xb[instr.rs1].astype(np.uint32)[:, None]
        raw = run.vb
        raw[instr.vd, :, :vl] = fn(raw[instr.vs2, :, :vl], scalar)
        run.v_defined.add(instr.vd)
    return handler


for _op, _fn in _VX_U32.items():
    _DISPATCH[_op] = _make_vx_u32(_fn)

_VI_I32 = {
    Op.VADD_VI: lambda a, s: a + s,
    Op.VRSUB_VI: lambda a, s: s - a,
}


def _make_vi_i32(fn):
    def handler(run, instr):
        vl = run.vl
        i32 = run.vb_i32
        i32[instr.vd, :, :vl] = fn(i32[instr.vs2, :, :vl],
                                   np.int32(instr.imm))
        run.v_defined.add(instr.vd)
    return handler


for _op, _fn in _VI_I32.items():
    _DISPATCH[_op] = _make_vi_i32(_fn)

_VV_I32 = {
    Op.VADD_VV: lambda a, b: a + b,
    Op.VSUB_VV: lambda a, b: a - b,
    Op.VAND_VV: lambda a, b: a & b,
    Op.VOR_VV: lambda a, b: a | b,
    Op.VXOR_VV: lambda a, b: a ^ b,
    Op.VMUL_VV: lambda a, b: a * b,
    Op.VMIN_VV: np.minimum,
    Op.VMAX_VV: np.maximum,
}


def _make_vv_i32(fn):
    def handler(run, instr):
        vl = run.vl
        i32 = run.vb_i32
        i32[instr.vd, :, :vl] = fn(i32[instr.vs2, :, :vl],
                                   i32[instr.vs1, :, :vl])
        run.v_defined.add(instr.vd)
    return handler


for _op, _fn in _VV_I32.items():
    _DISPATCH[_op] = _make_vv_i32(_fn)

_VV_U32 = {Op.VMINU_VV: np.minimum, Op.VMAXU_VV: np.maximum}


def _make_vv_u32(fn):
    def handler(run, instr):
        vl = run.vl
        raw = run.vb
        raw[instr.vd, :, :vl] = fn(raw[instr.vs2, :, :vl],
                                   raw[instr.vs1, :, :vl])
        run.v_defined.add(instr.vd)
    return handler


for _op, _fn in _VV_U32.items():
    _DISPATCH[_op] = _make_vv_u32(_fn)

_VV_F32 = {
    Op.VFADD_VV: lambda a, b: a + b,
    Op.VFSUB_VV: lambda a, b: a - b,
    Op.VFMUL_VV: lambda a, b: a * b,
}


def _make_vv_f32(fn):
    def handler(run, instr):
        vl = run.vl
        f32 = run.vb_f32
        f32[instr.vd, :, :vl] = fn(f32[instr.vs2, :, :vl],
                                   f32[instr.vs1, :, :vl])
        run.v_defined.add(instr.vd)
    return handler


for _op, _fn in _VV_F32.items():
    _DISPATCH[_op] = _make_vv_f32(_fn)

_VF_F32 = {
    Op.VFADD_VF: lambda a, s: a + s,
    Op.VFSUB_VF: lambda a, s: a - s,
    Op.VFMUL_VF: lambda a, s: a * s,
}


def _make_vf_f32(fn):
    def handler(run, instr):
        vl = run.vl
        scalar = run.fb[instr.rs1][:, None]
        f32 = run.vb_f32
        f32[instr.vd, :, :vl] = fn(f32[instr.vs2, :, :vl], scalar)
        run.v_defined.add(instr.vd)
    return handler


for _op, _fn in _VF_F32.items():
    _DISPATCH[_op] = _make_vf_f32(_fn)


@_register(Op.VFMACC_VF)
def _vfmacc_vf(run, instr):
    vl = run.vl
    f32 = run.vb_f32
    f32[instr.vd, :, :vl] += (run.fb[instr.rs1][:, None]
                              * f32[instr.vs2, :, :vl])
    run.v_defined.add(instr.vd)


@_register(Op.VFMACC_VV)
def _vfmacc_vv(run, instr):
    vl = run.vl
    f32 = run.vb_f32
    f32[instr.vd, :, :vl] += (f32[instr.vs1, :, :vl]
                              * f32[instr.vs2, :, :vl])
    run.v_defined.add(instr.vd)


@_register(Op.VMACC_VV)
def _vmacc_vv(run, instr):
    vl = run.vl
    i32 = run.vb_i32
    i32[instr.vd, :, :vl] += (i32[instr.vs1, :, :vl]
                              * i32[instr.vs2, :, :vl])
    run.v_defined.add(instr.vd)


@_register(Op.VMACC_VX)
def _vmacc_vx(run, instr):
    vl = run.vl
    scalar = run.xb[instr.rs1].astype(np.int32)[:, None]
    i32 = run.vb_i32
    i32[instr.vd, :, :vl] += scalar * i32[instr.vs2, :, :vl]
    run.v_defined.add(instr.vd)


@_register(Op.VINDEXMAC_VX)
def _vindexmac_vx(run, instr):
    vl = run.vl
    indices = (run.xb[instr.rs1] & 0x1F).astype(np.intp)
    # dynamically addressed sources must also satisfy the entry-state
    # assumption; any not yet (re)defined in-batch joins the
    # iteration-invariance check
    for reg in np.unique(indices).tolist():
        if reg not in run.v_defined:
            run.v_live_extra.add(reg)
    f32 = run.vb_f32
    source = f32[indices, run.iota, :vl]
    f32[instr.vd, :, :vl] += f32[instr.vs2, :, 0][:, None] * source
    run.v_defined.add(instr.vd)


@_register(Op.VSLIDE1DOWN_VX)
def _vslide1down_vx(run, instr):
    vl = run.vl
    raw = run.vb
    src = raw[instr.vs2, :, 1:vl].copy()
    raw[instr.vd, :, :vl - 1] = src
    raw[instr.vd, :, vl - 1] = run.xb[instr.rs1].astype(np.uint32)
    run.v_defined.add(instr.vd)


@_register(Op.VSLIDE1UP_VX)
def _vslide1up_vx(run, instr):
    vl = run.vl
    raw = run.vb
    src = raw[instr.vs2, :, :vl - 1].copy()
    raw[instr.vd, :, 1:vl] = src
    raw[instr.vd, :, 0] = run.xb[instr.rs1].astype(np.uint32)
    run.v_defined.add(instr.vd)


def _slidedown(run, instr, amount):
    vl = run.vl
    raw = run.vb
    if amount >= vl:
        raw[instr.vd, :, :vl] = 0
    else:
        src = raw[instr.vs2, :, amount:vl].copy()
        raw[instr.vd, :, :vl - amount] = src
        raw[instr.vd, :, vl - amount:vl] = 0
    run.v_defined.add(instr.vd)


@_register(Op.VSLIDEDOWN_VX)
def _vslidedown_vx(run, instr):
    _slidedown(run, instr, run.const_scalar(instr.rs1))


@_register(Op.VSLIDEDOWN_VI)
def _vslidedown_vi(run, instr):
    if instr.imm < 0:
        raise _BatchFallback("negative slide amount")
    _slidedown(run, instr, instr.imm)


def _slideup(run, instr, amount):
    vl = run.vl
    raw = run.vb
    if amount < vl:
        src = raw[instr.vs2, :, :vl - amount].copy()
        raw[instr.vd, :, amount:vl] = src
    # tail-preserving: vd keeps its lanes below `amount`, so this write
    # never counts as defining (see trace._V_PARTIAL_WRITE)


@_register(Op.VSLIDEUP_VX)
def _vslideup_vx(run, instr):
    _slideup(run, instr, run.const_scalar(instr.rs1))


@_register(Op.VSLIDEUP_VI)
def _vslideup_vi(run, instr):
    if instr.imm < 0:
        raise _BatchFallback("negative slide amount")
    _slideup(run, instr, instr.imm)


@_register(Op.VMV_V_I)
def _vmv_v_i(run, instr):
    run.vb_i32[instr.vd, :, :run.vl] = np.int32(instr.imm)
    run.v_defined.add(instr.vd)


@_register(Op.VMV_V_X)
def _vmv_v_x(run, instr):
    run.vb_i32[instr.vd, :, :run.vl] = \
        run.xb[instr.rs1].astype(np.int32)[:, None]
    run.v_defined.add(instr.vd)


@_register(Op.VMV_V_V)
def _vmv_v_v(run, instr):
    run.vb[instr.vd, :, :run.vl] = run.vb[instr.vs1, :, :run.vl]
    run.v_defined.add(instr.vd)


@_register(Op.VMV_S_X)
def _vmv_s_x(run, instr):
    run.vb[instr.vd, :, 0] = run.xb[instr.rs1].astype(np.uint32)


@_register(Op.VMV_X_S)
def _vmv_x_s(run, instr):
    if instr.rd:
        run.xb[instr.rd] = run.vb_i32[instr.vs2, :, 0].astype(np.int64)


@_register(Op.VFMV_F_S)
def _vfmv_f_s(run, instr):
    run.fb[instr.rd] = run.vb_f32[instr.vs2, :, 0]


@_register(Op.VFMV_S_F)
def _vfmv_s_f(run, instr):
    run.vb_f32[instr.vd, :, 0] = run.fb[instr.rs1]


@_register(Op.VREDSUM_VS)
def _vredsum_vs(run, instr):
    vl = run.vl
    i32 = run.vb_i32
    total = (i32[instr.vs1, :, 0].astype(np.int64)
             + i32[instr.vs2, :, :vl].sum(axis=1, dtype=np.int64))
    i32[instr.vd, :, 0] = total.astype(np.int32)


@_register(Op.VID_V)
def _vid_v(run, instr):
    run.vb_i32[instr.vd, :, :run.vl] = np.arange(run.vl, dtype=np.int32)
    run.v_defined.add(instr.vd)


# Deliberately unsupported (always sequential): VSETVLI changes vl
# mid-body; VFREDUSUM_VS reduction order across a 2-D axis is not
# guaranteed bitwise-identical to the sequential 1-D sum.


# ======================================================================
# the batch run
# ======================================================================
class _BatchRun:
    """One verified batched replay of ``n`` loop iterations."""

    def __init__(self, proc, program, n):
        core = proc.core
        self.proc = proc
        self.program = program
        self.n = n
        self.vl = core.vl
        self.mem = core.mem
        self.buf = core.mem._buf
        self.mem_size = core.mem.size
        self.iota = np.arange(n, dtype=np.intp)
        self._offsets: dict[int, np.ndarray] = {}
        # entry state (just after the sequentially replayed probe
        # iteration); integer registers get the affine stride guess
        self.x_entry1 = np.array(core.xrf.values, dtype=np.int64)
        self.f_entry = np.array(core.frf.values, dtype=np.float32)
        self.v_entry = core.vrf.raw.copy()
        self.x_delta = None  # set by seed()
        self.xb = None
        self.fb = np.repeat(self.f_entry[:, None], n, axis=1)
        self.vb = np.ascontiguousarray(
            np.repeat(core.vrf.raw[:, None, :], n, axis=1))
        self.vb_i32 = self.vb.view(np.int32)
        self.vb_f32 = self.vb.view(np.float32)
        self.v_defined: set[int] = set()
        self.v_live_extra: set[int] = set()
        self.slots: list = []          # (is_vector, is_write, size, addrs)
        self.load_ranges: list = []    # (addrs, size)
        self.store_ranges: list = []   # (addrs, size)
        self.staged: list = []         # (addrs, size, bytes (n, size))

    def seed(self, x_before) -> None:
        """Seed integer rows with ``x1 + i * delta`` (int64 wrap)."""
        delta = self.x_entry1 - np.array(x_before, dtype=np.int64)
        iters = np.arange(self.n, dtype=np.int64)
        self.x_delta = delta
        self.xb = self.x_entry1[:, None] + delta[:, None] * iters
        self.xb[0] = 0  # x0 is hardwired

    # ------------------------------------------------------------------
    def _offs(self, size: int) -> np.ndarray:
        offs = self._offsets.get(size)
        if offs is None:
            offs = np.arange(size, dtype=np.int64)
            self._offsets[size] = offs
        return offs

    def gather(self, addrs, size: int, vector: bool) -> np.ndarray:
        """Load ``size`` bytes per lane; records the hierarchy slot."""
        if int(addrs.min()) < 0 or int(addrs.max()) + size > self.mem_size:
            raise _BatchFallback("load out of range")
        order = len(self.slots)  # program-order rank of this access
        self.slots.append((vector, False, size, addrs))
        self.load_ranges.append((addrs, size, order))
        return self.buf[addrs[:, None] + self._offs(size)]

    def stage_store(self, addrs, size: int, data, vector: bool) -> None:
        """Queue ``size`` bytes per lane; committed after verification."""
        if int(addrs.min()) < 0 or int(addrs.max()) + size > self.mem_size:
            raise _BatchFallback("store out of range")
        order = len(self.slots)
        self.slots.append((vector, True, size, addrs))
        self.store_ranges.append((addrs, size, order))
        self.staged.append((addrs, size, data))

    def const_scalar(self, reg: int) -> int:
        """The value of ``x[reg]`` if identical in every lane."""
        row = self.xb[reg]
        value = int(row[0])
        if not (row == value).all():
            raise _BatchFallback("iteration-varying scalar operand")
        if value < 0:
            raise _BatchFallback("negative slide amount")
        return value

    # ------------------------------------------------------------------
    def execute(self) -> None:
        """Run the program, verify the entry-state assumptions, commit."""
        for fn, instr in self.program.ops:
            fn(self, instr)
        self._verify_registers()
        self._verify_memory()
        self._commit()

    def _verify_registers(self) -> None:
        summary = self.program.summary
        for reg in summary.x_live_in:
            if reg in summary.x_written:
                expected = (self.x_entry1[reg]
                            + self.x_delta[reg] * (self.iota + 1))
                if not np.array_equal(self.xb[reg], expected):
                    raise _BatchFallback("non-affine integer register")
        f_bits = self.fb.view(np.uint32)
        f_entry_bits = self.f_entry.view(np.uint32)
        for reg in summary.f_live_in:
            if reg in summary.f_written and \
                    not (f_bits[reg] == f_entry_bits[reg]).all():
                raise _BatchFallback("iteration-varying FP register")
        for reg in summary.v_live_in | self.v_live_extra:
            if reg in summary.v_written and \
                    not (self.vb[reg] == self.v_entry[reg][None, :]).all():
                raise _BatchFallback("iteration-varying vector register")

    def _verify_memory(self) -> None:
        """Staged stores must commute with the batch's loads and stores.

        Sequential truth is lane-major: lane ``i`` runs to completion
        before lane ``i + 1``.  Loads gathered from pre-batch memory
        are valid unless a *sequentially earlier* store staged the same
        bytes — a load overlapping only the same lane's *later* store
        is the benign tile-accumulate pattern (load, update, store) and
        allowed.  Two stores may overlap only where the slot-major
        commit scatter produces the same final bytes as the lane-major
        order: within one slot numpy's last-index-wins matches the lane
        order, and across slots only an *earlier* slot's *later* lane
        overwriting a later slot's earlier lane disagrees.
        """
        stores = self.store_ranges
        if not stores:
            return
        iota = self.iota
        later = iota[:, None] > iota[None, :]
        for si, (sa, ss, ks) in enumerate(stores):
            s_lo, s_hi = int(sa.min()), int(sa.max()) + ss
            for sa2, ss2, _ks2 in stores[si + 1:]:
                if s_lo >= int(sa2.max()) + ss2 or int(sa2.min()) >= s_hi:
                    continue
                overlap = (sa[:, None] < sa2[None, :] + ss2) \
                    & (sa2[None, :] < sa[:, None] + ss)
                if (overlap & later).any():
                    raise _BatchFallback("conflicting store order")
            for la, ls, kl in self.load_ranges:
                if s_lo >= int(la.max()) + ls or int(la.min()) >= s_hi:
                    continue
                overlap = (sa[:, None] < la[None, :] + ls) \
                    & (la[None, :] < sa[:, None] + ss)
                bad = ~later if ks < kl else later.T
                if (overlap & bad).any():
                    raise _BatchFallback("load reads a staged store")

    def _commit(self) -> None:
        self.proc.hierarchy.bulk_replay(self.slots, self.n)
        for addrs, size, data in self.staged:
            self.buf[addrs[:, None] + self._offs(size)] = data
        core = self.proc.core
        summary = self.program.summary
        xv = core.xrf.values
        for reg in summary.x_written:
            xv[reg] = int(self.xb[reg, -1])
        fv = core.frf.values
        for reg in summary.f_written:
            fv[reg] = float(self.fb[reg, -1])
        raw = core.vrf.raw
        for reg in summary.v_written:
            raw[reg] = self.vb[reg, -1]


def _compile(nodes, limit: int):
    """Expand one iteration of ``nodes`` and bind batched handlers.

    Returns ``None`` when the body is too large (nested loops will be
    batched individually instead) or contains an unsupported op.
    """
    summary = summarize_nodes(nodes, limit)
    if summary is None or summary.has_vsetvli:
        return None
    ops = []
    for instr in summary.instrs:
        fn = _DISPATCH.get(instr.op)
        if fn is None:
            return None
        if instr.op in _SHIFT_IMM_OPS and not 0 <= instr.imm < 64:
            return None
        ops.append((fn, instr))
    return _Program(summary, ops)


class BatchReplayBackend(CompressedReplayBackend):
    """Compressed-replay with NumPy-batched middles (module docstring).

    Inherits the bracket timing arithmetic unchanged — with identical
    ``lead``/``trail``/``chunk``/``chunk_cap`` knobs, cycles,
    statistics and results are bit-identical to ``compressed-replay``.
    The initial ``chunk`` stays at the compressed default (the cache-
    warming transient needs densely-spaced probes either way) but the
    growth cap is much higher: once a loop settles, a replayed middle
    is nearly free here, so the probes — not the replay — dominate,
    and sparse probing is where the wall-clock win comes from.
    ``min_batch`` is the replay length below which batching is not
    attempted and ``expand_limit`` caps the unrolled body size (larger
    bodies fall back to sequential replay of the outer level, inside
    which nested loops are batched individually).
    """

    name = "batch-replay"

    #: chunks that failed verification this often stay sequential
    _MAX_FAILURES = 3

    def __init__(self, lead: int = 3, trail: int = 3, chunk: int = 8,
                 min_body: int = 32, min_repeat: int = 16,
                 chunk_cap: int = 4096, chunk_growth: float = 2.0,
                 min_batch: int = 8, expand_limit: int = 4096):
        super().__init__(lead=lead, trail=trail, chunk=chunk,
                         min_body=min_body, min_repeat=min_repeat,
                         chunk_cap=chunk_cap, chunk_growth=chunk_growth)
        self.chunk_carry = True
        self.min_batch = min_batch
        self.expand_limit = expand_limit
        self._programs: dict[int, tuple] = {}

    def _program_for(self, nodes):
        key = id(nodes)
        entry = self._programs.get(key)
        if entry is not None and entry[0] is nodes:
            return entry[1]
        program = _compile(nodes, self.expand_limit)
        self._programs[key] = (nodes, program)
        return program

    def _replay_nodes(self, proc, nodes, repeat: int,
                      at: float | None = None) -> None:
        if repeat < self.min_batch:
            super()._replay_nodes(proc, nodes, repeat, at)
            return
        program = self._program_for(nodes)
        if program is None or program.failures >= self._MAX_FAILURES:
            super()._replay_nodes(proc, nodes, repeat, at)
            return
        # probe: one exact sequential iteration measures the strides
        x_before = list(proc.core.xrf.values)
        super()._replay_nodes(proc, nodes, 1, at)
        run = _BatchRun(proc, program, repeat - 1)
        run.seed(x_before)
        try:
            run.execute()
        except _BatchFallback:
            program.failures += 1
            super()._replay_nodes(proc, nodes, repeat - 1, at)
