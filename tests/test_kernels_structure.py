"""Structural properties of the generated instruction streams."""

import numpy as np
import pytest

from repro.arch import DecoupledProcessor, ProcessorConfig
from repro.errors import KernelError
from repro.isa import Op
from repro.kernels import (
    Dataflow,
    KernelOptions,
    build_indexmac_spmm,
    build_rowwise_spmm,
    get_kernel,
    max_tile_rows,
    stage_spmm,
    validate_tile_rows,
)
from repro.kernels.builder import li, row_groups
from repro.sparse import random_nm_matrix


def staged_case(rows=8, k=64, n=32, nm=(1, 4), seed=0):
    rng = np.random.default_rng(seed)
    a = random_nm_matrix(rows, k, *nm, rng)
    b = rng.standard_normal((k, n)).astype(np.float32)
    proc = DecoupledProcessor(ProcessorConfig.paper_default())
    return proc, stage_spmm(proc.mem, a, b), a, b


def op_histogram(stream):
    hist = {}
    for instr in stream:
        hist[instr.op] = hist.get(instr.op, 0) + 1
    return hist


# ----------------------------------------------------------------------
# instruction-mix invariants (the paper's per-iteration claims)
# ----------------------------------------------------------------------
def test_indexmac_kernel_has_no_b_loads_in_inner_loop():
    """Proposed kernel vector loads = A slices + C rows + B tile preload
    only — one load per pre-loaded tile row, never per non-zero."""
    proc, staged, a, b = staged_case()
    hist = op_histogram(build_indexmac_spmm(staged, KernelOptions()))
    tile, vl = 16, 16
    k_tiles = staged.k // tile
    col_tiles = staged.n_cols // vl
    preload = tile * k_tiles * col_tiles
    # per (i, kt, jt): values + col_idx (+ C except first k-tile)
    a_loads = 2 * staged.rows * k_tiles * col_tiles
    c_loads = staged.rows * (k_tiles - 1) * col_tiles
    assert hist[Op.VLE32] == preload + a_loads + c_loads
    assert hist[Op.VINDEXMAC_VX] == \
        staged.rows * staged.slots_per_row * col_tiles
    assert Op.VFMACC_VF not in hist


def test_rowwise_kernel_loads_b_per_nonzero():
    proc, staged, a, b = staged_case()
    hist = op_histogram(build_rowwise_spmm(staged, KernelOptions()))
    tile, vl = 16, 16
    k_tiles = staged.k // tile
    col_tiles = staged.n_cols // vl
    b_loads = staged.rows * staged.slots_per_row * col_tiles
    a_loads = 2 * staged.rows * k_tiles * col_tiles
    c_loads = staged.rows * (k_tiles - 1) * col_tiles
    assert hist[Op.VLE32] == b_loads + a_loads + c_loads
    assert hist[Op.VFMACC_VF] == b_loads
    assert Op.VINDEXMAC_VX not in hist


def test_per_nonzero_v2s_moves_halved():
    """Algorithm 2 needs two vector->scalar moves per non-zero
    (address + value); Algorithm 3 needs one (index only)."""
    proc, staged, a, b = staged_case()
    col_tiles = staged.n_cols // 16
    nnz_iters = staged.rows * staged.slots_per_row * col_tiles
    hist2 = op_histogram(build_rowwise_spmm(staged, KernelOptions()))
    hist3 = op_histogram(build_indexmac_spmm(staged, KernelOptions()))
    assert hist2[Op.VMV_X_S] == nnz_iters
    assert hist2[Op.VFMV_F_S] == nnz_iters
    assert hist3[Op.VMV_X_S] == nnz_iters
    assert Op.VFMV_F_S not in hist3


def test_slide_counts_match_paper_listing():
    """Both algorithms slide values and col_idx once per non-zero."""
    proc, staged, a, b = staged_case()
    col_tiles = staged.n_cols // 16
    nnz_iters = staged.rows * staged.slots_per_row * col_tiles
    for builder in (build_rowwise_spmm, build_indexmac_spmm):
        hist = op_histogram(builder(staged, KernelOptions()))
        assert hist[Op.VSLIDE1DOWN_VX] == 2 * nnz_iters


def test_proposed_fewer_instructions_overall():
    proc, staged, a, b = staged_case(rows=16, k=128, n=64)
    n2 = sum(op_histogram(build_rowwise_spmm(staged, KernelOptions())).values())
    n3 = sum(op_histogram(build_indexmac_spmm(staged, KernelOptions())).values())
    assert n3 < n2


def test_memory_access_reduction_close_to_paper():
    """Fig. 6 arithmetic: ~48% fewer vector memory instructions at 1:4,
    ~65% at 2:4 (for reasonably tall A)."""
    for nm, low, high in [((1, 4), 0.40, 0.55), ((2, 4), 0.60, 0.70)]:
        proc, staged, a, b = staged_case(rows=64, k=128, n=64, nm=nm)
        def vmem(stream):
            return sum(1 for i in stream if i.is_vector_mem)
        base = vmem(build_rowwise_spmm(staged, KernelOptions()))
        prop = vmem(build_indexmac_spmm(staged, KernelOptions()))
        reduction = 1 - prop / base
        assert low < reduction < high, (nm, reduction)


# ----------------------------------------------------------------------
# option validation
# ----------------------------------------------------------------------
def test_indexmac_requires_b_stationary():
    proc, staged, a, b = staged_case()
    with pytest.raises(KernelError):
        list(build_indexmac_spmm(
            staged, KernelOptions(dataflow=Dataflow.C_STATIONARY)))


def test_tile_rows_upper_bound():
    assert max_tile_rows(1, 4, 16) == 64
    assert max_tile_rows(2, 4, 16) == 32
    assert max_tile_rows(4, 4, 16) == 16
    with pytest.raises(KernelError):
        validate_tile_rows(6, 1, 4, 16, 32)  # not a multiple of M
    with pytest.raises(KernelError):
        validate_tile_rows(64, 2, 4, 16, 32)  # exceeds M*VL/N
    with pytest.raises(KernelError):
        validate_tile_rows(24, 1, 4, 16, 32)  # does not leave 16 vregs
    validate_tile_rows(16, 2, 4, 16, 32)  # the paper's configuration


def test_bad_unroll_rejected():
    with pytest.raises(KernelError):
        KernelOptions(unroll=3)
    with pytest.raises(KernelError):
        KernelOptions(tile_rows=0)


def test_k_not_multiple_of_tile_rejected():
    rng = np.random.default_rng(0)
    a = random_nm_matrix(4, 24, 1, 4, rng)  # K=24 not a multiple of 16
    b = rng.standard_normal((24, 16)).astype(np.float32)
    proc = DecoupledProcessor(ProcessorConfig.paper_default())
    staged = stage_spmm(proc.mem, a, b)
    with pytest.raises(KernelError):
        list(build_rowwise_spmm(staged, KernelOptions()))


def test_stage_rejects_bad_shapes():
    rng = np.random.default_rng(0)
    proc = DecoupledProcessor(ProcessorConfig.paper_default())
    a = random_nm_matrix(4, 16, 1, 4, rng)
    with pytest.raises(KernelError):
        stage_spmm(proc.mem, a, rng.standard_normal((8, 16)))  # K mismatch
    with pytest.raises(KernelError):
        stage_spmm(proc.mem, a, rng.standard_normal((16, 15)))  # N % 16
    with pytest.raises(KernelError):
        stage_spmm(proc.mem, a, rng.standard_normal((16,)))  # 1-D


def test_registry():
    assert get_kernel("rowwise-spmm") is build_rowwise_spmm
    assert get_kernel("indexmac-spmm") is build_indexmac_spmm
    with pytest.raises(KernelError):
        get_kernel("nonexistent")


# ----------------------------------------------------------------------
# builder helpers
# ----------------------------------------------------------------------
def test_li_small_and_large():
    small = list(li(10, 100))
    assert len(small) == 1
    large = list(li(10, 0x12345678))
    assert len(large) == 2
    neg = list(li(10, -5))
    assert len(neg) == 1
    with pytest.raises(KernelError):
        list(li(10, 1 << 40))


def test_li_functional_value():
    """The lui/addi pair must reconstruct the exact constant."""
    from repro.arch import DecoupledProcessor

    for value in (0x12345678, 0x7FFFF7FF, 2048, 4095, -123456):
        proc = DecoupledProcessor()
        proc.run(li(10, value))
        assert proc.xrf.values[10] == value, hex(value)
    with pytest.raises(KernelError):
        list(li(10, 0x7FFFF800))  # lui would sign-extend


def test_row_groups_remainders():
    assert list(row_groups(10, 4)) == [(0, 4), (4, 4), (8, 2)]
    assert list(row_groups(7, 4)) == [(0, 4), (4, 2), (6, 1)]
    assert list(row_groups(3, 4)) == [(0, 2), (2, 1)]
    assert list(row_groups(8, 2)) == [(0, 2), (2, 2), (4, 2), (6, 2)]
    assert list(row_groups(5, 1)) == [(i, 1) for i in range(5)]
