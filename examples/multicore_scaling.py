#!/usr/bin/env python3
"""Multi-core sharded simulation, end to end.

1. Shard one SpMM across 1..8 simulated cores with
   ``Schedule(cores=N)`` and show the per-core traces, the makespan
   merge, and the bit-identical stitched result — core count is just
   another schedulable axis of the kernel compiler.
2. Run the whole-model scaling study (`repro scaling` does the same
   from the CLI) and print the speedup/efficiency table.

Run:  python examples/multicore_scaling.py [--policy tiny|small]
"""

import argparse

import numpy as np

from repro.arch import ProcessorConfig
from repro.eval import ExperimentEngine, run_scaling, run_spmm, set_engine
from repro.eval.runner import run_spmm_shard
from repro.kernels import Schedule
from repro.nn import POLICIES
from repro.sparse import random_nm_matrix

KERNEL = "indexmac-spmm"


def show_sharded_kernel():
    rng = np.random.default_rng(0)
    a = random_nm_matrix(32, 64, 1, 4, rng)
    b = rng.standard_normal((64, 32)).astype(np.float32)
    config = ProcessorConfig.scaled_default()

    single = run_spmm(a, b, KERNEL, schedule=Schedule(), config=config)
    print(f"{KERNEL} on a 32x64x32 GEMM, 1:4 sparsity")
    print(f"  1 core : {single.stats.cycles:10,.0f} cycles "
          f"({single.stats.instructions:,} instructions)")
    for cores in (2, 4, 8):
        schedule = Schedule(cores=cores)
        shards = [run_spmm_shard(a, b, KERNEL, schedule, i, config=config)
                  for i in range(cores)]
        merged = run_spmm(a, b, KERNEL, schedule=schedule, config=config)
        rows = ", ".join(f"c{s.shard}:{s.row_count}r" for s in shards)
        speedup = single.stats.cycles / merged.stats.cycles
        print(f"  {cores} cores: {merged.stats.cycles:10,.0f} cycles "
              f"makespan -> {speedup:.2f}x  [{rows}]")
    print()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--policy", default="tiny",
                        choices=sorted(POLICIES))
    args = parser.parse_args()
    policy = POLICIES[args.policy]
    engine = set_engine(ExperimentEngine.from_env())

    show_sharded_kernel()

    result = run_scaling(models=("resnet50",), policy=policy,
                         config=ProcessorConfig.scaled_default(),
                         core_counts=(1, 2, 4, 8))
    print(result.render())
    problems = result.check()
    print("\ncheck:", "ok — all verified, makespans bounded, >1x at 8 "
                      "cores" if not problems else problems)
    print(f"[{engine.summary()}]")


if __name__ == "__main__":
    main()
