"""Cross-process cache sharing and offline compaction (vacuum).

The serve layer's whole premise is one on-disk cache shared by many
engines — this file pins down (a) that two engines in *separate
processes* storing into one ``$REPRO_CACHE_DIR`` interleave safely in
the append-only pack manifest and observe each other's results, and
(b) that ``ResultCache.vacuum()`` compacts the pack layout without
losing a single result.
"""

import os
import subprocess
import sys
from dataclasses import asdict
from pathlib import Path

import repro
from repro.eval.comparison import BASELINE, PROPOSED
from repro.eval.engine import (
    ExperimentEngine,
    ResultCache,
    SimJob,
    job_hash,
)


def tiny_job(kernel=PROPOSED, nm=(1, 4), seed=0):
    return SimJob.for_shape(8, 32, 16, nm, kernel, seed=seed)


def runs_equal(a, b) -> bool:
    sa, sb = asdict(a.stats), asdict(b.stats)
    sa["extra"] = {k: v for k, v in sa["extra"].items()
                   if k != "wall_seconds"}
    sb["extra"] = {k: v for k, v in sb["extra"].items()
                   if k != "wall_seconds"}
    return (a.kernel == b.kernel and a.verified == b.verified
            and sa == sb)


# ----------------------------------------------------------------------
# Two engines, two processes, one cache directory
# ----------------------------------------------------------------------
_WORKER = """
import sys
from repro.eval.engine import ExperimentEngine, SimJob, job_hash

seeds = [int(s) for s in sys.argv[1].split(",")]
engine = ExperimentEngine(jobs=1)
jobs = [SimJob.for_shape(8, 32, 16, (1, 4), "indexmac-spmm", seed=s)
        for s in seeds]
runs = engine.run(jobs)
engine.shutdown()
for job, run in zip(jobs, runs):
    print(job_hash(job), run.stats.cycles)
"""


def _spawn(cache_dir: Path, seeds) -> subprocess.Popen:
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = {**os.environ, "PYTHONPATH": src_dir,
           "REPRO_CACHE_DIR": str(cache_dir)}
    return subprocess.Popen(
        [sys.executable, "-c", _WORKER,
         ",".join(str(s) for s in seeds)],
        env=env, stdout=subprocess.PIPE, text=True)


def test_two_processes_store_concurrently_into_one_cache(tmp_path):
    """Concurrent ``store()`` streams from two engine processes must
    interleave safely in the append-only manifest: no line torn, no
    entry lost, and afterwards *both* workloads are loadable by a
    third engine through the batched index path."""
    cache_dir = tmp_path / "shared"
    seeds_a, seeds_b = list(range(0, 12)), list(range(12, 24))
    procs = [_spawn(cache_dir, seeds_a), _spawn(cache_dir, seeds_b)]
    reported: dict[str, int] = {}
    for proc in procs:
        out, _ = proc.communicate(timeout=300)
        assert proc.returncode == 0
        for line in out.splitlines():
            key, cycles = line.split()
            reported[key] = float(cycles)
    assert len(reported) == 24

    # every manifest line is intact JSON (no torn interleaved appends)
    cache = ResultCache(cache_dir)
    manifest = cache.manifest_path.read_text().splitlines()
    assert len(manifest) == 24
    assert cache.indexed_count() == 24

    # a fresh engine observes all 24 without a single simulation
    engine = ExperimentEngine(jobs=1, cache_dir=cache_dir)
    jobs = [tiny_job(seed=s) for s in seeds_a + seeds_b]
    runs = engine.run(jobs)
    engine.shutdown()
    assert engine.counters.simulated == 0
    assert engine.counters.disk_hits == 24
    for job, run in zip(jobs, runs):
        assert run.stats.cycles == reported[job_hash(job)]


def test_engine_sees_other_processes_appends_via_load_many(tmp_path):
    """A long-lived engine that already read the manifest still picks
    up entries a *different process* appended afterwards (per-file /
    re-read fallback keeps shared caches coherent)."""
    cache_dir = tmp_path / "shared"
    watcher = ExperimentEngine(jobs=1, cache_dir=cache_dir)
    warm = tiny_job(seed=100)
    watcher.run([warm])  # forces the manifest read, stores one entry

    proc = _spawn(cache_dir, [101, 102])
    out, _ = proc.communicate(timeout=300)
    assert proc.returncode == 0

    runs = watcher.run([tiny_job(seed=101), tiny_job(seed=102)])
    watcher.shutdown()
    assert watcher.counters.simulated == 1  # only the warm-up job
    assert len(runs) == 2 and all(r.verified for r in runs)


# ----------------------------------------------------------------------
# vacuum
# ----------------------------------------------------------------------
def test_vacuum_compacts_without_losing_results(tmp_path):
    cache_dir = tmp_path / "cache"
    engine = ExperimentEngine(jobs=1, cache_dir=cache_dir)
    jobs = [tiny_job(seed=s) for s in range(6)] + \
           [tiny_job(kernel=BASELINE, nm=(2, 4), seed=s)
            for s in range(3)]
    originals = engine.run(jobs)
    engine.shutdown()

    cache = ResultCache(cache_dir)
    count_before, bytes_before = cache.usage()
    assert count_before == 9
    assert len(cache.entries()) == 9  # per-file + packed = redundant

    removed, reclaimed = cache.vacuum()
    assert removed >= 9  # the 9 adopted per-file entries at least
    assert reclaimed > 0
    count_after, bytes_after = cache.usage()
    assert count_after == 9  # no entry lost
    assert bytes_after == bytes_before - reclaimed
    assert cache.entries() == []  # all adopted into the index
    segments = [p for p in cache.pack_dir.iterdir()
                if p.name != cache.manifest_path.name]
    assert len(segments) == 1  # one compacted segment

    # every result still loads bit-exact through a fresh cache
    fresh = ResultCache(cache_dir)
    for job, original in zip(jobs, originals):
        reloaded = fresh.load(job_hash(job))
        assert reloaded is not None
        assert runs_equal(reloaded, original)

    # backend accounting survives the per-file deletion
    assert fresh.backend_counts() == {originals[0].backend: 9}


def test_vacuum_keeps_unindexed_per_file_entries(tmp_path, monkeypatch):
    cache_dir = tmp_path / "cache"
    # entry stored with the index disabled: per-file only
    monkeypatch.setenv("REPRO_CACHE_INDEX", "0")
    engine = ExperimentEngine(jobs=1, cache_dir=cache_dir)
    unindexed = tiny_job(seed=500)
    engine.run([unindexed])
    engine.shutdown()
    monkeypatch.delenv("REPRO_CACHE_INDEX")

    engine = ExperimentEngine(jobs=1, cache_dir=cache_dir)
    engine.run([tiny_job(seed=501)])
    engine.shutdown()

    cache = ResultCache(cache_dir)
    cache.vacuum()
    # the never-indexed entry survives as a file and still loads
    assert [p.stem for p in cache.entries()] == \
        [job_hash(unindexed)]
    assert cache.load(job_hash(unindexed)) is not None
    count, _ = cache.usage()
    assert count == 2


def test_vacuum_with_index_disabled_is_a_noop(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_INDEX", "0")
    cache = ResultCache(tmp_path / "cache")
    assert cache.vacuum() == (0, 0)


def test_vacuum_idempotent_and_store_after_vacuum(tmp_path):
    cache_dir = tmp_path / "cache"
    engine = ExperimentEngine(jobs=1, cache_dir=cache_dir)
    engine.run([tiny_job(seed=s) for s in range(4)])
    engine.shutdown()

    cache = ResultCache(cache_dir)
    cache.vacuum()
    removed, reclaimed = cache.vacuum()  # second pass: nothing to do
    assert removed == 1  # only the previous compacted segment rewritten
    count, _ = cache.usage()
    assert count == 4

    # the same cache instance keeps serving stores and loads
    engine = ExperimentEngine(jobs=1, cache_dir=cache_dir)
    runs = engine.run([tiny_job(seed=99)])
    assert runs[0].verified
    engine2 = ExperimentEngine(jobs=1, cache_dir=cache_dir)
    engine2.run([tiny_job(seed=99)])
    assert engine2.counters.disk_hits == 1
    engine.shutdown()
    engine2.shutdown()


def test_cli_cache_vacuum(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    engine = ExperimentEngine(jobs=1)
    engine.run([tiny_job(seed=s) for s in range(3)])
    engine.shutdown()
    assert main(["cache", "--vacuum"]) == 0
    out = capsys.readouterr().out
    assert "vacuumed:" in out and "KiB reclaimed" in out
    assert main(["cache"]) == 0
    assert "entries:      3" in capsys.readouterr().out


# ----------------------------------------------------------------------
# warm-batch summary (no more "0k instr/s" on fully-warm runs)
# ----------------------------------------------------------------------
def test_summary_reports_hit_rate_on_fully_warm_batches(tmp_path):
    cache_dir = tmp_path / "cache"
    jobs = [tiny_job(seed=s) for s in range(4)]
    warmup = ExperimentEngine(jobs=1, cache_dir=cache_dir)
    warmup.run(jobs)
    warmup.shutdown()

    engine = ExperimentEngine(jobs=1, cache_dir=cache_dir)
    engine.run(jobs)
    engine.shutdown()
    summary = engine.summary()
    assert summary.startswith("engine: 0 simulations")  # CI greps this
    assert "0k instr/s" not in summary
    assert "100% hit rate" in summary
    assert engine.counters.hit_rate == 1.0
    assert engine.counters.warm_rate > 0


def test_summary_keeps_throughput_on_simulating_batches():
    engine = ExperimentEngine(jobs=1, cache=False)
    engine.run([tiny_job(seed=1000)])
    engine.shutdown()
    assert "instr/s" in engine.summary()
    assert "hit rate" not in engine.summary()
