"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``      print the Table I processor configuration
``fig4``        per-layer ResNet50 speedups (Fig. 4)
``fig5``        total-CNN speedups (Fig. 5)
``fig6``        normalized memory accesses (Fig. 6)
``ablations``   the A1-A5 design-space studies
``tune``        autotune the kernel schedule (tile rows, unroll,
                dataflow, cores; optionally vlmax / init-C) through
                the cached engine
``bench``       regenerate any subset of paper artifacts through the
                experiment engine, with a progress/summary report
``scaling``     multi-core sharding study (1/2/4/8-core speedup and
                efficiency per model and N:M pattern)
``cache``       inspect, vacuum, or clear the on-disk result cache
``serve``       run the shared-cache experiment server (HTTP)
``submit``      submit a job batch to a running experiment server
``layers``      list a model's convolutions and GEMM shapes
``encode``      assemble one instruction and show its encoding
``quickcheck``  30-second end-to-end sanity run (tiny scale)
``crosscheck``  gate ``compressed-replay`` against ``detailed``

Per-layer schedule policies
---------------------------
``fig4``/``fig5``/``fig6``/``bench``/``scaling`` accept ``--policy
fixed|heuristic|tuned``: ``fixed`` (default) applies one schedule to
every layer, ``heuristic`` derives a deterministic shape-driven
schedule per layer, and ``tuned`` resolves each layer through a
schedule book (``--schedule-book FILE``, produced by ``repro tune
--per-layer``).  ``--scale tiny|small|medium`` selects the workload
scale policy (scale names passed to ``--policy`` keep working for
backwards compatibility).  The commands also accept ``--schedule
FILE`` to run with one tuned kernel schedule produced by ``repro
tune`` instead of the paper's hand-picked one, and ``--cores N`` to
shard every kernel's output rows across N simulated cores (per-core
traces simulated in parallel by the engine's worker pool, merged into
makespan cycles).

Experiment engine
-----------------
The simulation-backed commands (``fig4``/``fig5``/``fig6``/
``ablations``/``bench``) accept ``--jobs N`` (worker processes, ``0``
meaning one per CPU), ``--no-cache`` (skip the on-disk result cache
at ``$REPRO_CACHE_DIR``, default ``~/.cache/repro/sim``) and
``--backend`` (timing backend; also ``$REPRO_BACKEND``).  Identical
(kernel, workload, config, backend) simulations are executed exactly
once and shared across figures and invocations; see
:mod:`repro.eval.engine` for the cache-invalidation rules.

The engine's fast paths have their own knobs: ``$REPRO_POOL_IDLE``
(idle-reap timeout of the persistent worker pool, seconds, default
60), ``$REPRO_CACHE_INDEX`` (``0`` disables the packed cache index),
``$REPRO_CACHE_LRU`` (in-memory result LRU entries, default 256) and
``$REPRO_WORKER_MEMO`` (per-worker operand/trace memo entries).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.arch.config import ProcessorConfig
from repro.arch.timing import available_backends, resolve_backend
from repro.errors import ReproError
from repro.eval.engine import (
    ExperimentEngine,
    SimJob,
    atomic_write_text,
    set_engine,
)
from repro.eval.experiments import (
    run_csr_ablation,
    run_dataflow_ablation,
    run_fig4,
    run_fig5,
    run_fig6,
    run_scaling,
    run_sparsity_sweep,
    run_table1,
    run_tile_rows_ablation,
    run_unroll_ablation,
)
from repro.eval.report import format_table
from repro.isa.assembler import assemble
from repro.isa.encoding import encode
from repro.nn.models import get_model, list_models
from repro.nn.workload import POLICIES


#: Schedule-policy names (``--policy``); scale-policy names remain
#: accepted through the same flag for backwards compatibility.
SCHEDULE_POLICIES = ("fixed", "heuristic", "tuned")

_SCALE_CHOICES = sorted(set(POLICIES) - {"full"})


def _add_policy_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--policy", default=None,
        choices=[*SCHEDULE_POLICIES, *_SCALE_CHOICES],
        help="per-layer schedule policy (fixed|heuristic|tuned; "
             "default: fixed).  Scale-policy names (tiny|small|medium) "
             "are also accepted here for backwards compatibility — "
             "prefer --scale for those")
    parser.add_argument(
        "--scale", default=None, choices=_SCALE_CHOICES,
        help="workload scale policy (default: small)")


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (0 = one per CPU; "
                             "default: $REPRO_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk "
                             "simulation result cache")
    parser.add_argument("--bulk", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="route cold analytic jobs through the "
                             "in-process bulk evaluator (default: "
                             "$REPRO_BULK or on; --no-bulk forces the "
                             "per-job pooled path, bit-identically)")
    _add_backend_arg(parser)


def _add_schedule_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--schedule", default=None, metavar="FILE",
                        help="JSON schedule from `repro tune` to use "
                             "instead of the paper default")
    parser.add_argument("--schedule-book", default=None, metavar="FILE",
                        help="per-layer schedule book from `repro tune "
                             "--per-layer` (implies --policy tuned)")
    parser.add_argument("--cores", type=int, default=None, metavar="N",
                        help="shard every kernel's output rows across "
                             "N simulated cores (default: the "
                             "schedule's core count, 1)")


def _schedule(args):
    """The tuned Schedule selected by --schedule, or None."""
    path = getattr(args, "schedule", None)
    if not path:
        return None
    from repro.eval.tuning import load_tuned_schedule

    return load_tuned_schedule(path)


def _fixed_schedule(args, cores):
    """The effective fixed schedule of --schedule/--cores (None =
    paper default single-core — the exact legacy path, so default runs
    stay bit-identical in the cache)."""
    schedule = _schedule(args)
    if cores is not None:
        from dataclasses import replace

        from repro.eval.experiments import paper_schedule

        schedule = replace(schedule or paper_schedule(), cores=cores)
    return schedule


def _schedule_policy(args, cores="auto"):
    """The schedule source selected by --policy / --schedule /
    --schedule-book / --cores.

    Returns ``None`` (paper default) or a tuned :class:`Schedule` for
    the fixed policy, else a :class:`~repro.eval.schedules.
    SchedulePolicy` that the drivers resolve per layer.  ``cores``
    defaults to the command's ``--cores`` value; pass ``None`` for
    commands (``scaling``) that sweep their own core ladder.
    """
    from repro.errors import TuningError

    if cores == "auto":
        cores = getattr(args, "cores", None)
        if cores is not None and cores < 1:
            raise SystemExit(f"--cores must be a positive core count, "
                             f"got {cores}")
    explicit = getattr(args, "policy", None)
    name = explicit if explicit in SCHEDULE_POLICIES else None
    book_path = getattr(args, "schedule_book", None)
    schedule_path = getattr(args, "schedule", None)
    if name is None and book_path:
        name = "tuned"
    # conflicting flag combinations must fail loudly, never silently
    # drop a file the user expected to participate in the run
    if name == "heuristic" and (schedule_path or book_path):
        raise TuningError(
            "--policy heuristic derives schedules from layer shapes; "
            "it conflicts with --schedule/--schedule-book")
    if name == "tuned" and schedule_path:
        raise TuningError(
            "--schedule conflicts with --policy tuned; per-layer "
            "schedules come from the book (--schedule-book)")
    if explicit == "fixed" and book_path:
        raise TuningError(
            "--schedule-book needs --policy tuned (or omit --policy)")
    if name == "tuned":
        from repro.eval.schedules import TunedPolicy, load_schedule_book

        if not book_path:
            raise TuningError(
                "--policy tuned needs --schedule-book FILE (create one "
                "with `repro tune --per-layer`)")
        return TunedPolicy(book=load_schedule_book(book_path),
                           cores=cores)
    if name == "heuristic":
        from repro.eval.schedules import HeuristicPolicy

        return HeuristicPolicy(cores=cores or 1)
    return _fixed_schedule(args, cores)


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default=None,
                        choices=available_backends(),
                        help="timing backend (default: $REPRO_BACKEND "
                             "or 'detailed')")


def _install_engine(args) -> ExperimentEngine:
    """Build the engine selected by --jobs/--no-cache (env fills gaps)."""
    engine = ExperimentEngine.from_env(
        jobs=getattr(args, "jobs", None),
        cache=False if getattr(args, "no_cache", False) else None,
        bulk=getattr(args, "bulk", None))
    set_engine(engine)
    return engine


def _policy_and_config(args):
    """The workload scale policy (--scale, or a legacy scale name
    passed through --policy) and the simulated processor config."""
    name = getattr(args, "scale", None)
    chosen = getattr(args, "policy", None)
    if name is None and chosen in POLICIES:
        name = chosen
    return POLICIES[name or "small"], ProcessorConfig.scaled_default()


def _backend(args) -> str:
    return resolve_backend(getattr(args, "backend", None))


def cmd_table1(args) -> int:
    print(run_table1().render())
    return 0


def cmd_fig4(args) -> int:
    policy, config = _policy_and_config(args)
    engine = _install_engine(args)
    print(run_fig4(model=args.model, policy=policy, config=config,
                   options=_schedule_policy(args),
                   backend=_backend(args)).render())
    print(f"\n[{engine.summary()}]")
    return 0


def cmd_fig5(args) -> int:
    policy, config = _policy_and_config(args)
    engine = _install_engine(args)
    print(run_fig5(policy=policy, config=config, options=_schedule_policy(args),
                   backend=_backend(args)).render())
    print(f"\n[{engine.summary()}]")
    return 0


def cmd_fig6(args) -> int:
    policy, config = _policy_and_config(args)
    engine = _install_engine(args)
    print(run_fig6(policy=policy, config=config, options=_schedule_policy(args),
                   backend=_backend(args)).render())
    print(f"\n[{engine.summary()}]")
    return 0


def cmd_ablations(args) -> int:
    policy, config = _policy_and_config(args)
    engine = _install_engine(args)
    backend = _backend(args)
    for runner in (run_dataflow_ablation, run_unroll_ablation,
                   run_tile_rows_ablation, run_csr_ablation,
                   run_sparsity_sweep):
        print(runner(policy=policy, config=config,
                     backend=backend).render())
        print()
    print(f"[{engine.summary()}]")
    return 0


# ======================================================================
# bench — regenerate paper artifacts through the engine
# ======================================================================
#: name -> (title, results file stem,
#:           driver(policy, config, backend, options) -> result).
#: ``options`` is the tuned Schedule from --schedule (None = paper
#: default); the ablation drivers sweep their own options and ignore it.
ARTIFACTS = {
    "table1": ("Table I", "table1",
               lambda policy, config, backend, options: run_table1()),
    "fig4": ("Fig. 4", "fig4",
             lambda policy, config, backend, options: run_fig4(
                 policy=policy, config=config, backend=backend,
                 options=options)),
    "fig5": ("Fig. 5", "fig5",
             lambda policy, config, backend, options: run_fig5(
                 policy=policy, config=config, backend=backend,
                 options=options)),
    "fig6": ("Fig. 6", "fig6",
             lambda policy, config, backend, options: run_fig6(
                 policy=policy, config=config, backend=backend,
                 options=options)),
    "a1": ("A1 dataflow ablation", "ablation_dataflow",
           lambda policy, config, backend, options: run_dataflow_ablation(
               policy=policy, config=config, backend=backend)),
    "a2": ("A2 unroll ablation", "ablation_unroll",
           lambda policy, config, backend, options: run_unroll_ablation(
               policy=policy, config=config, backend=backend)),
    "a3": ("A3 tile-rows ablation", "ablation_tile_rows",
           lambda policy, config, backend, options: run_tile_rows_ablation(
               policy=policy, config=config, backend=backend)),
    "a4": ("A4 CSR ablation", "ablation_csr",
           lambda policy, config, backend, options: run_csr_ablation(
               policy=policy, config=config, backend=backend)),
    "a5": ("A5 sparsity sweep", "ablation_sparsity",
           lambda policy, config, backend, options: run_sparsity_sweep(
               policy=policy, config=config, backend=backend)),
    "scaling": ("Multi-core scaling", "scaling",
                lambda policy, config, backend, options:
                _scaling_artifact(policy, config, backend, options)),
}


def _scaling_artifact(policy, config, backend, options):
    """The bench `scaling` driver honors --cores: an explicit core
    count narrows the sweep to (1, N) instead of the default ladder."""
    from repro.eval.experiments import DEFAULT_CORE_COUNTS
    from repro.eval.schedules import SchedulePolicy
    from repro.kernels import Schedule

    core_counts = DEFAULT_CORE_COUNTS
    cores = None
    if isinstance(options, Schedule):
        cores = options.cores
    elif isinstance(options, SchedulePolicy):
        cores = getattr(options, "cores", None)
    if cores is not None and cores > 1:
        core_counts = (1, cores)
    return run_scaling(policy=policy, config=config, backend=backend,
                       options=options, core_counts=core_counts)


def cmd_bench(args) -> int:
    policy, config = _policy_and_config(args)
    engine = _install_engine(args)
    names = list(args.artifacts)
    if "all" in names:
        names = list(ARTIFACTS)
    names = list(dict.fromkeys(names))  # dedupe, keep order
    out_dir = Path(args.out)
    start_all = time.perf_counter()
    backend = _backend(args)
    schedule = _schedule_policy(args)
    for i, name in enumerate(names, 1):
        title, stem, driver = ARTIFACTS[name]
        start = time.perf_counter()
        before = engine.counters.snapshot()
        result = driver(policy, config, backend, schedule)
        text = result.render()
        elapsed = time.perf_counter() - start
        delta = engine.counters.since(before)
        if delta.sim_seconds > 0:
            speed = f" ({delta.throughput / 1e3:,.0f}k instr/s simulated)"
        elif delta.simulated == 0 and delta.total:
            # fully-warm artifact: instr/s is meaningless, report the
            # cache instead
            speed = f" ({delta.hit_rate:.0%} cache hits, 0 simulations)"
        else:
            speed = ""
        path = out_dir / f"{stem}.txt"
        atomic_write_text(path, text + "\n")
        print(f"[{i}/{len(names)}] {title} regenerated in "
              f"{elapsed:.1f}s{speed} -> {path}")
        if args.show:
            print(text)
            print()
    total = time.perf_counter() - start_all
    print(f"\n{len(names)} artifact(s) at policy {policy.name!r} "
          f"in {total:.1f}s")
    print(engine.summary())
    return 0


# ======================================================================
# tune — schedule autotuning through the cached engine
# ======================================================================
def _parse_nm(text: str) -> tuple[int, int]:
    try:
        n, m = (int(part) for part in text.split(":"))
    except ValueError:
        raise SystemExit(f"--nm expects N:M (e.g. 1:4), got {text!r}")
    return n, m


def cmd_tune(args) -> int:
    from repro.eval.tuning import save_tuned_schedule, tune

    policy, config = _policy_and_config(args)
    engine = _install_engine(args)
    if args.per_layer:
        return _tune_per_layer(args, policy, config, engine)
    kwargs = dict(policy=policy, layer=args.layer)
    if args.shape is not None:
        kwargs = dict(shape=tuple(args.shape), seed=args.seed)
    result = tune(args.kernel, _parse_nm(args.nm), config=config,
                  backend=_backend(args), engine=engine,
                  cores=tuple(args.cores), sweep_vlmax=args.sweep_vlmax,
                  sweep_init_c=args.sweep_init_c, **kwargs)
    text = result.render()
    # persist artifacts before printing: a closed stdout (broken pipe)
    # must not lose the tuning outcome
    if args.table_out:
        atomic_write_text(Path(args.table_out), text + "\n")
    if args.out:
        save_tuned_schedule(args.out, result)
    print(text)
    print(f"\n[{engine.summary()}]")
    if args.table_out:
        print(f"tuning table -> {args.table_out}")
    if args.out:
        print(f"best schedule -> {args.out}  "
              f"(use it with --schedule on fig4/fig5/fig6/bench)")
    if args.check:
        ok = True
        if not result.all_verified:
            print("FAIL: a sweep point produced an unverified result")
            ok = False
        if not result.best_beats_default:
            print("FAIL: tuned schedule is slower than the paper default")
            ok = False
        if not ok:
            return 1
    return 0


def _tune_per_layer(args, policy, config, engine) -> int:
    """`repro tune --per-layer`: every distinct layer of a model,
    cross-backend, persisted as a schedule book."""
    from repro.eval.schedules import save_schedule_book
    from repro.eval.tuning import tune_per_layer

    result = tune_per_layer(
        args.kernel, _parse_nm(args.nm), model=args.model, policy=policy,
        config=config, backend=_backend(args),
        sweep_backend=args.sweep_backend, top_k=args.top_k,
        cores=tuple(args.cores), sweep_vlmax=args.sweep_vlmax,
        sweep_init_c=args.sweep_init_c, layers=args.layers,
        engine=engine)
    text = result.render()
    # persist artifacts before printing: a closed stdout (broken pipe)
    # must not lose the tuning outcome
    if args.table_out:
        atomic_write_text(Path(args.table_out), text + "\n")
    if args.book_out:
        save_schedule_book(args.book_out, result.to_book())
    print(text)
    print(f"\n[{engine.summary()}]")
    if args.table_out:
        print(f"tuning table -> {args.table_out}")
    if args.book_out:
        print(f"schedule book -> {args.book_out}  (use it with "
              f"--policy tuned --schedule-book on fig4/fig5/fig6/bench/"
              f"scaling)")
    if args.check:
        ok = True
        if not result.all_verified:
            print("FAIL: a sweep point produced an unverified result")
            ok = False
        if not result.best_beats_default:
            print("FAIL: a layer's tuned schedule is slower than the "
                  "paper default")
            ok = False
        if not ok:
            return 1
    return 0


# ======================================================================
# scaling — multi-core sharding study
# ======================================================================
def cmd_scaling(args) -> int:
    policy, config = _policy_and_config(args)
    engine = _install_engine(args)
    result = run_scaling(models=tuple(args.models), policy=policy,
                         config=config, options=_schedule_policy(args, cores=None),
                         core_counts=tuple(args.cores),
                         kernel=args.kernel, backend=_backend(args))
    text = result.render()
    if args.table_out:
        atomic_write_text(Path(args.table_out), text + "\n")
    print(text)
    print(f"\n[{engine.summary()}]")
    if args.table_out:
        print(f"scaling table -> {args.table_out}")
    if args.check:
        problems = result.check()
        for problem in problems:
            print(f"FAIL: {problem}")
        if problems:
            return 1
        top = max(result.core_counts)
        print(f"scaling check ok: all results verified, every layer's "
              f"makespan <= single-core cycles, >1x speedup at "
              f"{top} cores")
    return 0


# ======================================================================
# cache — inspect/clear the on-disk simulation result cache
# ======================================================================
def cmd_cache(args) -> int:
    from repro.eval.engine import CACHE_SCHEMA, ResultCache

    cache = ResultCache()
    count, size = cache.usage()
    indexed = cache.indexed_count()
    print(f"cache dir:    {cache.root}")
    print(f"cache schema: {CACHE_SCHEMA}")
    print(f"entries:      {count}")
    print(f"indexed:      {indexed}"
          + ("" if cache.index_enabled else " (index disabled)"))
    print(f"total size:   {size / 1024:.1f} KiB")
    for backend, entries in cache.backend_counts().items():
        print(f"  {backend + ':':20s}{entries} entries")
    if args.vacuum:
        files_removed, reclaimed = cache.vacuum()
        _, size_after = cache.usage()
        print(f"vacuumed:     {files_removed} file(s) removed "
              f"(adopted per-file entries + old segments), "
              f"{reclaimed / 1024:.1f} KiB reclaimed "
              f"(now {size_after / 1024:.1f} KiB)")
    if args.clear:
        removed = cache.clear()
        print(f"cleared:      {removed} entries")
    return 0


# ======================================================================
# serve / submit — the shared-cache experiment server
# ======================================================================
def cmd_serve(args) -> int:
    from repro.serve.http import serve_forever
    from repro.serve.service import ExperimentService, ServeConfig

    engine = ExperimentEngine.from_env(
        jobs=getattr(args, "jobs", None),
        cache=False if getattr(args, "no_cache", False) else None,
        bulk=getattr(args, "bulk", None))
    config = ServeConfig.from_env(
        batch_window=args.window, max_batch=args.batch,
        interactive_depth=args.depth, bulk_depth=args.bulk_depth,
        retry_after=args.retry_after)
    service = ExperimentService(engine=engine, config=config)

    def announce(server):
        print(f"serving on {server.url}  "
              f"(window {config.batch_window * 1e3:g}ms, batch "
              f"{config.max_batch}, depth {config.interactive_depth}"
              f"/{config.bulk_depth}, workers {engine.jobs}, cache "
              f"{engine.cache.root if engine.cache else 'off'})",
              flush=True)

    try:
        serve_forever(service, host=args.host, port=args.port,
                      announce=announce)
    except KeyboardInterrupt:
        pass
    print("server stopped")
    return 0


def cmd_submit(args) -> int:
    import json

    from repro.serve.client import ServeClient, fig4_jobs

    client = ServeClient(args.url, timeout=args.timeout)
    if args.wait_ready:
        client.wait_until_ready(args.wait_ready)
    if args.shutdown:
        client.shutdown()
        print("server shutdown requested")
        return 0
    if args.stats:
        print(json.dumps(client.stats(), indent=2))
        return 0
    jobs = fig4_jobs(args.model, scale=args.scale,
                     sparsities=[_parse_nm(t) for t in args.nm],
                     backend=args.backend)
    start = time.perf_counter()
    response = client.submit(jobs, lane=args.lane)
    elapsed_ms = 1e3 * (time.perf_counter() - start)
    counts = response["counts"]
    errors = [r for r in response["results"] if "error" in r]
    print(f"batch {response['batch']} ({args.lane}): "
          f"{len(jobs)} job(s) in {elapsed_ms:,.1f}ms -- "
          f"{counts['warm']} warm, {counts['joined']} joined, "
          f"{counts['queued']} queued, {len(errors)} error(s)")
    for result in errors:
        print(f"  job {result['index']}: {result['error']}")
    if args.expect_warm and (errors or counts["warm"] != len(jobs)):
        print(f"FAIL: expected an all-warm batch, got {counts}")
        return 1
    return 1 if errors else 0


def cmd_layers(args) -> int:
    layers = get_model(args.model)
    rows = [[l.name, f"{l.in_channels}->{l.out_channels}",
             f"{l.kernel_h}x{l.kernel_w}/{l.stride}",
             f"{l.in_h}x{l.in_w}", str(l.gemm)] for l in layers]
    print(format_table(
        ["layer", "channels", "kernel", "input", "GEMM (rows x K x N)"],
        rows, title=f"{args.model}: {len(layers)} convolutions"))
    return 0


def cmd_encode(args) -> int:
    program = assemble(args.instruction)
    for instr in program:
        word = encode(instr)
        print(f"{word:#010x}  {word:032b}  {instr.asm()}")
    return 0


def cmd_quickcheck(args) -> int:
    from repro.eval.comparison import BASELINE, PROPOSED

    # sanity runs always re-simulate: a cached quickcheck checks nothing
    engine = ExperimentEngine.from_env(jobs=getattr(args, "jobs", None),
                                       cache=False)
    set_engine(engine)
    config = ProcessorConfig.scaled_default()
    backend = _backend(args)
    patterns = ((1, 4), (2, 4))
    runs = engine.run([
        SimJob.for_shape(16, 64, 32, nm, kernel, seed=0, config=config,
                         backend=backend)
        for nm in patterns
        for kernel in (BASELINE, PROPOSED)
    ])
    ok = True
    for nm, base, prop in zip(patterns, runs[0::2], runs[1::2]):
        speedup = base.cycles / prop.cycles
        saved = 1 - prop.stats.vector_mem_instrs / \
            base.stats.vector_mem_instrs
        status = "ok" if speedup > 1.0 else "FAIL"
        ok &= speedup > 1.0
        print(f"{nm[0]}:{nm[1]}  speedup {speedup:.2f}x  "
              f"mem saved {saved:.0%}  results verified  "
              f"[{backend}] [{status}]")
    return 0 if ok else 1


def cmd_crosscheck(args) -> int:
    """Gate approximate backends against `detailed` (CI smoke job)."""
    import numpy as np

    from repro.analytic.validation import validate_backend
    from repro.eval.comparison import BASELINE, PROPOSED
    from repro.nn.workload import make_workload

    backends = (args.backend if args.backend != ["all"]
                else [b for b in available_backends() if b != "detailed"])
    ok = True
    for backend in backends:
        print(f"-- {backend} vs detailed --")
        for rows, k, n, nm in ((64, 64, 32, (1, 4)), (64, 128, 32, (2, 4)),
                               (32, 64, 64, (2, 8))):
            rng = np.random.default_rng(0)
            a, b = make_workload(rows, k, n, *nm, rng)
            for kernel in (BASELINE, PROPOSED):
                report = validate_backend(a, b, kernel, backend=backend,
                                          tolerance=args.tolerance)
                print(f"{rows}x{k}x{n} {nm[0]}:{nm[1]}  {report.summary()}")
                ok &= report.ok
    return 0 if ok else 1


def cmd_calibrate(args) -> int:
    """Fit the analytic-sampled calibration table from detailed runs."""
    from pathlib import Path as _Path

    from repro.analytic.calibration import (
        DEFAULT_TABLE_PATH,
        reset_cache,
    )
    from repro.analytic.fit import run_calibration

    policy, config = _policy_and_config(args)
    engine = _install_engine(args)
    table, errors = run_calibration(model=args.model, policy=policy,
                                    config=config)
    out = _Path(args.out) if args.out else DEFAULT_TABLE_PATH
    table.save(out)
    reset_cache()
    abs_errors = sorted(errors, key=lambda e: -abs(e[1]))
    print(f"fitted {len(errors)} samples at policy {policy.name!r}: "
          f"relative RMS error {table.residual:.2%}, "
          f"worst {abs_errors[0][1]:+.2%} ({abs_errors[0][0]})")
    if args.show_errors:
        for label, err in abs_errors:
            print(f"  {label:48s} {err:+.2%}")
    print(f"[{engine.summary()}]")
    print(f"calibration table -> {out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IndexMAC reproduction (DATE 2024, arXiv:2311.07241)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table I configuration").set_defaults(
        fn=cmd_table1)

    p = sub.add_parser("fig4", help="per-layer speedups (Fig. 4)")
    p.add_argument("--model", default="resnet50", choices=list_models())
    _add_policy_arg(p)
    _add_engine_args(p)
    _add_schedule_arg(p)
    p.set_defaults(fn=cmd_fig4)

    p = sub.add_parser("fig5", help="total-CNN speedups (Fig. 5)")
    _add_policy_arg(p)
    _add_engine_args(p)
    _add_schedule_arg(p)
    p.set_defaults(fn=cmd_fig5)

    p = sub.add_parser("fig6", help="memory accesses (Fig. 6)")
    _add_policy_arg(p)
    _add_engine_args(p)
    _add_schedule_arg(p)
    p.set_defaults(fn=cmd_fig6)

    p = sub.add_parser("ablations", help="A1-A5 design-space studies")
    _add_policy_arg(p)
    _add_engine_args(p)
    p.set_defaults(fn=cmd_ablations)

    p = sub.add_parser(
        "bench",
        help="regenerate paper artifacts through the experiment engine")
    p.add_argument("--artifacts", nargs="+", default=["all"],
                   choices=["all", *ARTIFACTS],
                   help="artifact subset (default: all)")
    p.add_argument("--out", default="benchmarks/results", metavar="DIR",
                   help="directory for the rendered *.txt artifacts "
                        "(default: benchmarks/results)")
    p.add_argument("--show", action="store_true",
                   help="also print each rendered artifact")
    _add_policy_arg(p)
    _add_engine_args(p)
    _add_schedule_arg(p)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "tune",
        help="autotune the kernel schedule through the cached engine")
    p.add_argument("--kernel", default="indexmac-spmm",
                   choices=["rowwise-spmm", "indexmac-spmm"],
                   help="kernel whose schedule to tune")
    p.add_argument("--nm", default="1:4", metavar="N:M",
                   help="sparsity pattern (default: 1:4)")
    p.add_argument("--per-layer", action="store_true",
                   help="tune every distinct layer GEMM of --model "
                        "cross-backend (broad sweep on --sweep-backend, "
                        "top-K finalists re-ranked on --backend) and "
                        "write the per-layer schedule book")
    p.add_argument("--model", default="resnet50", choices=list_models(),
                   help="model whose layers to tune (--per-layer; "
                        "default: resnet50)")
    p.add_argument("--layers", nargs="+", default=None, metavar="NAME",
                   help="restrict --per-layer to these unique layers")
    p.add_argument("--top-k", type=int, default=3, metavar="K",
                   help="finalists per layer re-simulated on the final "
                        "backend (--per-layer; default: 3)")
    p.add_argument("--sweep-backend", default="compressed-replay",
                   choices=available_backends(),
                   help="timing backend of the broad --per-layer sweep "
                        "(default: compressed-replay)")
    p.add_argument("--book-out",
                   default="benchmarks/results/schedule_book.json",
                   metavar="FILE",
                   help="where to persist the --per-layer schedule "
                        "book (empty string to skip)")
    p.add_argument("--layer", default="conv3_1_3x3", metavar="NAME",
                   help="representative ResNet50 layer to tune on")
    p.add_argument("--shape", nargs=3, type=int, default=None,
                   metavar=("ROWS", "K", "N"),
                   help="tune on a synthetic GEMM instead of a layer")
    p.add_argument("--seed", type=int, default=0,
                   help="synthetic GEMM seed (with --shape)")
    p.add_argument("--out", default="benchmarks/results/tuned_schedule.json",
                   metavar="FILE",
                   help="where to persist the winning schedule "
                        "(empty string to skip)")
    p.add_argument("--table-out", default="benchmarks/results/tuning.txt",
                   metavar="FILE",
                   help="where to archive the tuning table "
                        "(empty string to skip)")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero unless every sweep point "
                        "verified and the winner beats or matches the "
                        "paper default schedule")
    p.add_argument("--cores", nargs="+", type=int, default=[1],
                   metavar="N",
                   help="core counts to sweep alongside tile/unroll/"
                        "dataflow (default: 1)")
    p.add_argument("--sweep-vlmax", action="store_true",
                   help="also sweep the vector length (vlmax, vlmax/2, "
                        "vlmax/4)")
    p.add_argument("--sweep-init-c", action="store_true",
                   help="also sweep init_c_zero (zero-fill vs load of "
                        "the first k-tile's accumulators)")
    _add_policy_arg(p)
    _add_engine_args(p)
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser(
        "scaling",
        help="multi-core sharding study (speedup/efficiency per model "
             "and N:M pattern)")
    p.add_argument("--models", nargs="+", default=list(list_models()),
                   choices=list_models(),
                   help="CNN models to scale (default: all)")
    p.add_argument("--kernel", default="indexmac-spmm",
                   choices=["rowwise-spmm", "indexmac-spmm"],
                   help="kernel whose rows are sharded")
    p.add_argument("--cores", nargs="+", type=int, default=[1, 2, 4, 8],
                   metavar="N",
                   help="core counts to compare (1 is always included "
                        "as the baseline; default: 1 2 4 8)")
    p.add_argument("--schedule", default=None, metavar="FILE",
                   help="JSON schedule from `repro tune` to shard "
                        "instead of the paper default")
    p.add_argument("--schedule-book", default=None, metavar="FILE",
                   help="per-layer schedule book from `repro tune "
                        "--per-layer` (implies --policy tuned)")
    p.add_argument("--table-out",
                   default="benchmarks/results/scaling.txt",
                   metavar="FILE",
                   help="where to archive the scaling table "
                        "(empty string to skip)")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero unless every result verified, "
                        "every layer's multicore makespan <= its "
                        "single-core cycles, and the top core count "
                        "yields >1x speedup")
    _add_policy_arg(p)
    _add_engine_args(p)
    p.set_defaults(fn=cmd_scaling)

    p = sub.add_parser(
        "cache",
        help="inspect (or vacuum/clear) the on-disk result cache")
    p.add_argument("--clear", action="store_true",
                   help="delete every cache entry after printing the "
                        "summary")
    p.add_argument("--vacuum", action="store_true",
                   help="compact the pack segments into one and drop "
                        "per-file entries already adopted into the "
                        "index (reports bytes reclaimed)")
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser(
        "serve",
        help="run the shared-cache experiment server (HTTP)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=8642,
                   help="TCP port (0 = ephemeral; default: 8642)")
    p.add_argument("--window", type=float, default=None, metavar="SEC",
                   help="batch coalescing window in seconds "
                        "(default: $REPRO_SERVE_WINDOW or 0.005)")
    p.add_argument("--batch", type=int, default=None, metavar="N",
                   help="max jobs per engine batch (default: "
                        "$REPRO_SERVE_BATCH or 128)")
    p.add_argument("--depth", type=int, default=None, metavar="N",
                   help="interactive-lane queue depth before shedding "
                        "(default: $REPRO_SERVE_DEPTH or 256)")
    p.add_argument("--bulk-depth", type=int, default=None, metavar="N",
                   help="bulk-lane queue depth before shedding "
                        "(default: $REPRO_SERVE_BULK_DEPTH or 2048)")
    p.add_argument("--retry-after", type=float, default=None,
                   metavar="SEC",
                   help="Retry-After advertised on a 429 (default: "
                        "$REPRO_SERVE_RETRY_AFTER or 1)")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="engine worker processes (0 = one per CPU)")
    p.add_argument("--no-cache", action="store_true",
                   help="serve without the on-disk result cache")
    p.add_argument("--bulk", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="route cold analytic jobs through the "
                        "in-process bulk evaluator (default: "
                        "$REPRO_BULK or on)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a job batch to a running experiment server")
    p.add_argument("--url", default="http://127.0.0.1:8642",
                   help="server URL (default: http://127.0.0.1:8642)")
    p.add_argument("--lane", default="interactive",
                   choices=["interactive", "bulk"],
                   help="priority lane (default: interactive)")
    p.add_argument("--model", default="resnet50", choices=list_models(),
                   help="model whose unique GEMM layers to submit")
    p.add_argument("--scale", default="tiny", choices=_SCALE_CHOICES,
                   help="workload scale policy (default: tiny)")
    p.add_argument("--nm", nargs="+", default=["1:4", "2:4"],
                   metavar="N:M",
                   help="sparsity patterns (default: 1:4 2:4)")
    _add_backend_arg(p)
    p.add_argument("--timeout", type=float, default=600.0,
                   metavar="SEC",
                   help="client socket timeout (default: 600)")
    p.add_argument("--wait-ready", type=float, default=0.0,
                   metavar="SEC",
                   help="poll the health endpoint up to SEC seconds "
                        "before submitting (CI startup races)")
    p.add_argument("--expect-warm", action="store_true",
                   help="exit non-zero unless every job was answered "
                        "from the warm cache (0 simulations)")
    p.add_argument("--stats", action="store_true",
                   help="print the server's /v1/stats JSON and exit")
    p.add_argument("--shutdown", action="store_true",
                   help="ask the server to stop and exit")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("layers", help="list a model's conv layers")
    p.add_argument("model", choices=list_models())
    p.set_defaults(fn=cmd_layers)

    p = sub.add_parser("encode", help="assemble + encode instructions")
    p.add_argument("instruction",
                   help='e.g. "vindexmac.vx v8, v1, t0"')
    p.set_defaults(fn=cmd_encode)

    p = sub.add_parser("quickcheck", help="fast end-to-end sanity run")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes (0 = one per CPU)")
    _add_backend_arg(p)
    p.set_defaults(fn=cmd_quickcheck)

    p = sub.add_parser(
        "crosscheck",
        help="validate approximate backends against detailed "
             "(tolerance gate)")
    p.add_argument("--backend", nargs="+", default=["compressed-replay"],
                   choices=[b for b in available_backends()
                            if b != "detailed"] + ["all"],
                   help="backend(s) to gate (default: compressed-replay; "
                        "'all' gates every approximate backend)")
    p.add_argument("--tolerance", type=float, default=None,
                   help="relative cycle tolerance (default: each "
                        "backend's documented tolerance)")
    p.set_defaults(fn=cmd_crosscheck)

    p = sub.add_parser(
        "calibrate",
        help="fit the analytic-sampled calibration table from "
             "detailed runs")
    p.add_argument("--model", default="resnet50", choices=list_models(),
                   help="CNN whose layers form the fit set")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="where to write the table (default: the "
                        "packaged calibration_default.json)")
    p.add_argument("--show-errors", action="store_true",
                   help="print the per-sample fit errors")
    _add_policy_arg(p)
    _add_engine_args(p)
    p.set_defaults(fn=cmd_calibrate)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        # a missing schedule book or corrupt tuned-schedule file is an
        # operator error, not a crash: one clean line, non-zero exit
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
