"""Cold-job planner: partition an engine batch by backend traits.

The experiment engine's cold path has two execution strategies:

* the **pooled** path (PR 7) — stage real operands, compile, and time
  each job on a worker process; mandatory for functional backends,
  whose results depend on operand values;
* the **bulk** path (:mod:`repro.analytic.bulk`) — for non-functional
  backends (``analytic-sampled``) nothing executes and the compiled
  trace is a pure function of the staged *geometry*, so whole sweeps
  can be priced in-process from one deduplicated feature matrix,
  skipping operand generation and pool dispatch entirely.

:func:`plan_batch` produces the partition as index tuples over the
batch.  It is an **exact cover**: every job index lands in exactly one
side, and eligibility is a pure per-job predicate, so the partition is
permutation-invariant (property-tested in
``tests/test_planner.py``).

Eligibility is conservative by construction: anything the geometry-only
plan cannot decide — unknown models, invalid N:M patterns, the int32
byte-offset guard's gray zone, kernels without a registered trace
builder (the CSR baseline's trace depends on the matrix's actual
sparsity structure) — falls back to the pooled path, which either
executes it or raises the canonical error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.timing import get_backend_class
from repro.errors import EngineError, WorkloadError
from repro.kernels.layout import StagedSpMM, plan_spmm
from repro.kernels.registry import TRACE_KERNELS
from repro.nn.layers import GemmShape
from repro.nn.models import get_model
from repro.nn.workload import FULL, padded_gemm


@dataclass(frozen=True)
class JobPlan:
    """An exact cover of one batch: every index in exactly one tuple,
    each tuple preserving submission order."""

    bulk: tuple[int, ...]    #: indices taking the in-process bulk path
    pooled: tuple[int, ...]  #: indices taking the per-job pooled path


def job_geometry(job) -> StagedSpMM:
    """The staged layout of ``job``, computed from geometry alone.

    Mirrors what the pooled path materialises: the workload's (scaled,
    padded) GEMM shape from :func:`~repro.nn.workload.padded_gemm`,
    replayed through :func:`~repro.kernels.layout.plan_spmm`'s exact
    allocation sequence.  Raises (rather than guessing) for anything
    the pooled path would reject — the planner turns that into a
    pooled-side fallback.
    """
    n, m = job.nm
    if job.model is not None:
        layer = next((l for l in get_model(job.model)
                      if l.name == job.layer), None)
        if layer is None:
            raise EngineError(
                f"model {job.model!r} has no layer {job.layer!r}")
        gemm, policy = layer.gemm, job.policy
    else:
        rows, k, n_cols = job.shape
        gemm, policy = GemmShape(rows=rows, k=k, n=n_cols), FULL
    scaled = policy.scale(gemm)
    if min(scaled.rows, scaled.k, scaled.n, n, m) < 1 or n > m:
        raise WorkloadError(
            f"bad workload request rows={scaled.rows} k={scaled.k} "
            f"n_cols={scaled.n} {n}:{m}")
    padded = padded_gemm(gemm, n, m, policy=policy,
                         tile_rows=job.schedule.tile_rows)
    return plan_spmm(padded.rows, padded.k, padded.n, n, m,
                     job.config.memory_bytes)


def bulk_eligible(job) -> bool:
    """Whether ``job`` can be priced by the in-process bulk evaluator.

    True only when the backend is non-functional (no operand values are
    ever read), the kernel has a registered trace builder, the schedule
    fits the configured vector engine, and the staged geometry is
    computable without materialising operands.  Any planning failure
    routes the job to the pooled path, which raises the canonical
    error for genuinely invalid jobs.
    """
    try:
        backend_cls = get_backend_class(job.backend)
        if backend_cls.functional or not hasattr(backend_cls, "price"):
            return False
        if job.kernel not in TRACE_KERNELS:
            return False
        if job.schedule.vlmax > job.config.vector.vlmax:
            return False  # pooled raises the canonical KernelError
        job_geometry(job)
    except Exception:
        return False
    return True


def plan_batch(jobs, bulk_enabled: bool = True) -> JobPlan:
    """Partition ``jobs`` (a sequence of SimJobs) into a :class:`JobPlan`.

    With ``bulk_enabled`` False (``--no-bulk`` / ``REPRO_BULK=0``)
    every job takes the pooled path — the escape hatch that must stay
    observationally identical to the planner's split.
    """
    if not bulk_enabled:
        return JobPlan(bulk=(), pooled=tuple(range(len(jobs))))
    bulk: list[int] = []
    pooled: list[int] = []
    for index, job in enumerate(jobs):
        (bulk if bulk_eligible(job) else pooled).append(index)
    return JobPlan(bulk=tuple(bulk), pooled=tuple(pooled))
