"""Trace IR: dynamic instruction streams with loop-structure annotations.

The kernel builders are Python loops that emit the exact dynamic
instruction stream a compiled binary would execute.  Historically they
yielded flat streams, so every timing model had to pay O(dynamic
instructions).  The Trace IR keeps the *structure* of those loops:

* a :class:`Block` is a straight-line run of instructions;
* a :class:`Loop` is a body (blocks and nested loops) executed
  ``repeat`` times.  A loop marked ``steady`` guarantees that every
  iteration executes the *identical* instruction sequence (the kernels
  arrange this by bumping pointers held in registers instead of
  re-materialising addresses), which is what lets the
  ``compressed-replay`` timing backend time a couple of representative
  iterations and extrapolate the rest;
* a :class:`Trace` is the top-level sequence.

``Trace.instructions()`` lazily expands the structure back into the
exact flat stream, so every existing consumer (the detailed processor,
stream-counting validators, tests) keeps working; a raw generator with
no structure is wrapped by :meth:`Trace.from_stream` into one
single-iteration block.

Builders use :class:`TraceBuilder`::

    tb = TraceBuilder()
    tb.emit(bld.set_vl(vlmax))           # accepts instrs or iterables
    with tb.loop(num_iterations):        # steady by default
        tb.emit(inner_body())
    trace = tb.build()
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager

from repro.errors import KernelError
from repro.isa.instructions import Instr


class Block:
    """A straight-line run of instructions (no internal structure)."""

    __slots__ = ("instrs",)

    def __init__(self, instrs):
        self.instrs = list(instrs)

    @property
    def dynamic_length(self) -> int:
        return len(self.instrs)

    def __repr__(self) -> str:
        return f"Block({len(self.instrs)} instrs)"


class Loop:
    """``repeat`` executions of a body of blocks and nested loops.

    ``steady`` asserts that every iteration runs the identical
    instruction sequence (same opcodes, registers and immediates), so a
    timing model may measure one iteration and extrapolate.  Loops whose
    bodies differ between iterations must be emitted unrolled (or with
    ``steady=False``).
    """

    __slots__ = ("body", "repeat", "steady", "label", "_has_memory",
                 "_sig")

    def __init__(self, body, repeat: int, steady: bool = True,
                 label: str = ""):
        if repeat < 0:
            raise KernelError(f"loop repeat must be >= 0, not {repeat}")
        self.body = tuple(body)
        self.repeat = repeat
        self.steady = steady
        self.label = label

    @property
    def body_length(self) -> int:
        """Dynamic instructions of ONE iteration of the body."""
        return sum(node.dynamic_length for node in self.body)

    @property
    def dynamic_length(self) -> int:
        return self.repeat * self.body_length

    @property
    def has_memory(self) -> bool:
        """True if any instruction in the body touches memory (an
        introspection helper for timing models and analyses; cached)."""
        try:
            return self._has_memory
        except AttributeError:
            pass
        result = False
        for node in self.body:
            if type(node) is Block:
                if any(i.is_vector_mem or i.is_scalar_mem
                       for i in node.instrs):
                    result = True
                    break
            elif node.has_memory:
                result = True
                break
        self._has_memory = result
        return result

    def __repr__(self) -> str:
        tag = "steady" if self.steady else "irregular"
        name = f" {self.label!r}" if self.label else ""
        return (f"Loop({tag}{name}, x{self.repeat}, "
                f"{self.body_length} instrs/iter)")


def _walk(nodes):
    for node in nodes:
        if type(node) is Block:
            yield from node.instrs
        else:
            body = node.body
            for _ in range(node.repeat):
                yield from _walk(body)


class Trace:
    """A structured dynamic instruction stream."""

    __slots__ = ("nodes",)

    def __init__(self, nodes=()):
        self.nodes = tuple(nodes)

    def instructions(self):
        """Lazily expand the exact flat dynamic stream."""
        return _walk(self.nodes)

    def __iter__(self):
        return self.instructions()

    @property
    def dynamic_length(self) -> int:
        """Total dynamic instruction count after expansion."""
        return sum(node.dynamic_length for node in self.nodes)

    def steady_fraction(self) -> float:
        """Share of dynamic instructions inside steady loops (top level
        of nesting counts the whole loop)."""
        total = self.dynamic_length
        if not total:
            return 0.0
        steady = sum(node.dynamic_length for node in self.nodes
                     if type(node) is Loop and node.steady)
        return steady / total

    def fingerprint(self) -> str:
        """sha256 over the exact expanded stream (opcode + all operands).

        Two traces share a fingerprint iff their dynamic instruction
        streams are identical instruction-for-instruction — the golden
        stream-identity tests pin kernel emissions to this digest.
        """
        digest = hashlib.sha256()
        first = True
        for instr in self.instructions():
            if not first:
                digest.update(b"\n")
            digest.update(",".join(map(str, instr.key())).encode())
            first = False
        return digest.hexdigest()

    @classmethod
    def from_stream(cls, stream) -> "Trace":
        """Wrap a raw (unannotated) stream as one straight-line block."""
        return cls((Block(stream),))

    def __repr__(self) -> str:
        return f"Trace({len(self.nodes)} nodes, {self.dynamic_length} instrs)"


class TraceBuilder:
    """Incremental construction of a :class:`Trace` from kernel loops."""

    def __init__(self):
        self._stack: list[list] = [[]]
        self._run: list[Instr] = []

    def emit(self, *items) -> None:
        """Append instructions: each item is an ``Instr`` or an iterable
        of them (e.g. the generator helpers in ``kernels.builder``)."""
        run = self._run
        for item in items:
            if isinstance(item, Instr):
                run.append(item)
            else:
                run.extend(item)

    def _flush(self) -> None:
        if self._run:
            self._stack[-1].append(Block(self._run))
            self._run = []

    @contextmanager
    def loop(self, repeat: int, steady: bool = True, label: str = ""):
        """Everything emitted inside the ``with`` is ONE iteration of a
        loop executed ``repeat`` times.  ``repeat=0`` discards the body.
        """
        self._flush()
        self._stack.append([])
        try:
            yield self
        finally:
            self._flush()
            body = self._stack.pop()
            if repeat > 0 and body:
                self._stack[-1].append(Loop(body, repeat, steady, label))

    def build(self) -> Trace:
        self._flush()
        if len(self._stack) != 1:
            raise KernelError("unbalanced TraceBuilder.loop() nesting")
        return Trace(self._stack[0])
