"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``      print the Table I processor configuration
``fig4``        per-layer ResNet50 speedups (Fig. 4)
``fig5``        total-CNN speedups (Fig. 5)
``fig6``        normalized memory accesses (Fig. 6)
``ablations``   the A1-A5 design-space studies
``layers``      list a model's convolutions and GEMM shapes
``encode``      assemble one instruction and show its encoding
``quickcheck``  30-second end-to-end sanity run (tiny scale)
"""

from __future__ import annotations

import argparse
import sys

from repro.arch.config import ProcessorConfig
from repro.eval.experiments import (
    run_csr_ablation,
    run_dataflow_ablation,
    run_fig4,
    run_fig5,
    run_fig6,
    run_sparsity_sweep,
    run_table1,
    run_tile_rows_ablation,
    run_unroll_ablation,
)
from repro.eval.report import format_table
from repro.isa.assembler import assemble
from repro.isa.encoding import encode
from repro.nn.models import get_model, list_models
from repro.nn.workload import POLICIES


def _add_policy_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--policy", default="small",
                        choices=sorted(set(POLICIES) - {"full"}),
                        help="workload scale policy (default: small)")


def _policy_and_config(args):
    policy = POLICIES[args.policy]
    return policy, ProcessorConfig.scaled_default()


def cmd_table1(args) -> int:
    print(run_table1().render())
    return 0


def cmd_fig4(args) -> int:
    policy, config = _policy_and_config(args)
    print(run_fig4(model=args.model, policy=policy, config=config).render())
    return 0


def cmd_fig5(args) -> int:
    policy, config = _policy_and_config(args)
    print(run_fig5(policy=policy, config=config).render())
    return 0


def cmd_fig6(args) -> int:
    policy, config = _policy_and_config(args)
    print(run_fig6(policy=policy, config=config).render())
    return 0


def cmd_ablations(args) -> int:
    policy, config = _policy_and_config(args)
    for runner in (run_dataflow_ablation, run_unroll_ablation,
                   run_tile_rows_ablation, run_csr_ablation,
                   run_sparsity_sweep):
        print(runner(policy=policy, config=config).render())
        print()
    return 0


def cmd_layers(args) -> int:
    layers = get_model(args.model)
    rows = [[l.name, f"{l.in_channels}->{l.out_channels}",
             f"{l.kernel_h}x{l.kernel_w}/{l.stride}",
             f"{l.in_h}x{l.in_w}", str(l.gemm)] for l in layers]
    print(format_table(
        ["layer", "channels", "kernel", "input", "GEMM (rows x K x N)"],
        rows, title=f"{args.model}: {len(layers)} convolutions"))
    return 0


def cmd_encode(args) -> int:
    program = assemble(args.instruction)
    for instr in program:
        word = encode(instr)
        print(f"{word:#010x}  {word:032b}  {instr.asm()}")
    return 0


def cmd_quickcheck(args) -> int:
    import numpy as np

    from repro.eval.runner import run_spmm
    from repro.sparse.prune import random_nm_matrix

    rng = np.random.default_rng(0)
    config = ProcessorConfig.scaled_default()
    ok = True
    for nm in ((1, 4), (2, 4)):
        a = random_nm_matrix(16, 64, *nm, rng)
        b = rng.standard_normal((64, 32)).astype(np.float32)
        base = run_spmm(a, b, "rowwise-spmm", config=config)
        prop = run_spmm(a, b, "indexmac-spmm", config=config)
        speedup = base.cycles / prop.cycles
        saved = 1 - prop.stats.vector_mem_instrs / \
            base.stats.vector_mem_instrs
        status = "ok" if speedup > 1.0 else "FAIL"
        ok &= speedup > 1.0
        print(f"{nm[0]}:{nm[1]}  speedup {speedup:.2f}x  "
              f"mem saved {saved:.0%}  results verified  [{status}]")
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IndexMAC reproduction (DATE 2024, arXiv:2311.07241)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table I configuration").set_defaults(
        fn=cmd_table1)

    p = sub.add_parser("fig4", help="per-layer speedups (Fig. 4)")
    p.add_argument("--model", default="resnet50", choices=list_models())
    _add_policy_arg(p)
    p.set_defaults(fn=cmd_fig4)

    p = sub.add_parser("fig5", help="total-CNN speedups (Fig. 5)")
    _add_policy_arg(p)
    p.set_defaults(fn=cmd_fig5)

    p = sub.add_parser("fig6", help="memory accesses (Fig. 6)")
    _add_policy_arg(p)
    p.set_defaults(fn=cmd_fig6)

    p = sub.add_parser("ablations", help="A1-A5 design-space studies")
    _add_policy_arg(p)
    p.set_defaults(fn=cmd_ablations)

    p = sub.add_parser("layers", help="list a model's conv layers")
    p.add_argument("model", choices=list_models())
    p.set_defaults(fn=cmd_layers)

    p = sub.add_parser("encode", help="assemble + encode instructions")
    p.add_argument("instruction",
                   help='e.g. "vindexmac.vx v8, v1, t0"')
    p.set_defaults(fn=cmd_encode)

    p = sub.add_parser("quickcheck", help="fast end-to-end sanity run")
    p.set_defaults(fn=cmd_quickcheck)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
