"""Timing-backend cross-validation on the ResNet-50 layer set.

Three claims are demonstrated, each with the numbers that back it:

1. **Figure accuracy** — at the experiment scale every Fig. 4 per-layer
   speedup ratio computed by ``compressed-replay`` is within +-2% of
   ``detailed``, the Fig. 5 total-CNN ratio matches, and the Fig. 6
   vector-memory-access counts are *exact* (they are extrapolated from
   identical per-iteration instruction mixes, so no tolerance is
   needed).

2. **Compression** — on steady-state-dominated replications of the
   layer set (rows scaled up instead of down, approximating batched
   inference), ``compressed-replay`` assigns detailed timing to >= 10x
   fewer instructions while the speedup ratios stay within tolerance.

3. **Speed** — on the same tall set, the four-tier backend ladder is
   measured wall-clock: ``batch-replay`` beats ``compressed-replay``
   and runs a multiple of ``detailed``'s throughput bit-exactly, and
   ``analytic-sampled`` is orders of magnitude faster again.  The
   measured numbers are archived as ``backend_speed.json``.

Set ``REPRO_BENCH_POLICY`` as usual for the accuracy half; the
compression and speed halves use their own tall replication scale.
"""

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from common import (  # noqa: E402
    RESULTS_DIR,
    config_from_env,
    policy_from_env,
    publish,
)

import numpy as np

from repro.arch import DecoupledProcessor
from repro.arch.timing import COMPRESSED_REPLAY, DETAILED, get_backend
from repro.eval.engine import atomic_write_text
from repro.eval.report import format_table
from repro.kernels import KernelOptions, get_trace_kernel, stage_spmm
from repro.nn.models import get_model, unique_gemm_layers
from repro.nn.workload import make_layer_workload

BASELINE, PROPOSED = "rowwise-spmm", "indexmac-spmm"

#: Tall replication of the layer set for the compression half: rows are
#: kept (clamped into a steady-state-dominated band, approximating a
#: batched im2col GEMM); K and N are trimmed to keep runtime modest.
from repro.nn.workload import ScalePolicy  # noqa: E402

REPLAY_SCALE = ScalePolicy("replay-bench", 1, (256, 1024), 4, (32, 128),
                           16, (16, 32))


def _run(kernel, workload, backend, config):
    proc = DecoupledProcessor(config)
    staged = stage_spmm(proc.mem, workload.a, workload.b)
    trace = get_trace_kernel(kernel)(staged, KernelOptions())
    if isinstance(backend, str):
        backend = get_backend(backend)
    return backend.run(proc, trace)


def _layer_table(policy, config, nm=(1, 4)):
    rows = []
    timed = dynamic = 0
    totals = {(k, b): 0.0 for k in (BASELINE, PROPOSED)
              for b in (DETAILED, COMPRESSED_REPLAY)}
    for layer, mult in unique_gemm_layers(get_model("resnet50")):
        workload = make_layer_workload(layer, *nm, policy=policy)
        results = {}
        for kernel in (BASELINE, PROPOSED):
            for backend in (DETAILED, COMPRESSED_REPLAY):
                res = _run(kernel, workload, backend, config)
                results[(kernel, backend)] = res
                totals[(kernel, backend)] += mult * res.stats.cycles
                if backend == COMPRESSED_REPLAY:
                    timed += res.timed_instructions
                    dynamic += res.dynamic_instructions
        det = results[(BASELINE, DETAILED)].stats.cycles \
            / results[(PROPOSED, DETAILED)].stats.cycles
        com = results[(BASELINE, COMPRESSED_REPLAY)].stats.cycles \
            / results[(PROPOSED, COMPRESSED_REPLAY)].stats.cycles
        mem_exact = all(
            results[(k, DETAILED)].stats.vector_mem_instrs
            == results[(k, COMPRESSED_REPLAY)].stats.vector_mem_instrs
            for k in (BASELINE, PROPOSED))
        rows.append([layer.name, det, com, f"{abs(com - det) / det:.2%}",
                     "exact" if mem_exact else "DIFFER"])
    agg_det = totals[(BASELINE, DETAILED)] / totals[(PROPOSED, DETAILED)]
    agg_com = totals[(BASELINE, COMPRESSED_REPLAY)] \
        / totals[(PROPOSED, COMPRESSED_REPLAY)]
    return rows, (agg_det, agg_com), timed, dynamic


def bench_backend_accuracy(benchmark, capsys):
    """Fig. 4-6 ratios under compressed-replay at the figure scale."""
    policy = policy_from_env()
    config = config_from_env()
    rows, (agg_det, agg_com), timed, dynamic = benchmark.pedantic(
        lambda: _layer_table(policy, config), rounds=1, iterations=1)

    errors = [abs(r[2] - r[1]) / r[1] for r in rows]
    assert max(errors) <= 0.02, \
        f"worst per-layer speedup-ratio error {max(errors):.2%}"
    assert abs(agg_com - agg_det) / agg_det <= 0.02
    assert all(r[4] == "exact" for r in rows), "Fig. 6 counts must be exact"

    text = format_table(
        ["layer", "speedup (detailed)", "speedup (compressed)",
         "ratio error", "Fig.6 counts"],
        rows,
        title=(f"Backend cross-validation, policy {policy.name!r}, 1:4 — "
               f"total speedup {agg_det:.3f} vs {agg_com:.3f}, "
               f"{dynamic / max(timed, 1):.1f}x fewer timed instructions"))
    publish("backend_accuracy", text, capsys)


def bench_backend_compression(benchmark, capsys):
    """>= 10x fewer timed instructions on tall layer replications."""
    config = config_from_env()
    #: the steady-state-dominated band of the layer set — every layer
    #: whose scaled GEMM runs >= 256 unrolled row-loop iterations
    names = ["conv2_1_1x1b", "conv3_1_1x1b", "conv4_1_1x1b",
             "conv4_1_proj", "conv5_1_1x1b", "conv5_1_proj"]
    layers = {l.name: l for l, _ in
              unique_gemm_layers(get_model("resnet50"))}

    def run_set():
        rows = []
        timed = dynamic = 0
        for name in names:
            workload = make_layer_workload(layers[name], 1, 4,
                                           policy=REPLAY_SCALE)
            results = {}
            for kernel in (BASELINE, PROPOSED):
                for backend in (DETAILED, COMPRESSED_REPLAY):
                    res = _run(kernel, workload, backend, config)
                    results[(kernel, backend)] = res
                    if backend == COMPRESSED_REPLAY:
                        timed += res.timed_instructions
                        dynamic += res.dynamic_instructions
            det = results[(BASELINE, DETAILED)].stats.cycles \
                / results[(PROPOSED, DETAILED)].stats.cycles
            com = results[(BASELINE, COMPRESSED_REPLAY)].stats.cycles \
                / results[(PROPOSED, COMPRESSED_REPLAY)].stats.cycles
            layer_timed = sum(
                results[(k, COMPRESSED_REPLAY)].timed_instructions
                for k in (BASELINE, PROPOSED))
            layer_dyn = sum(
                results[(k, COMPRESSED_REPLAY)].dynamic_instructions
                for k in (BASELINE, PROPOSED))
            rows.append([name, workload.a.rows, det, com,
                         f"{abs(com - det) / det:.2%}", layer_timed,
                         layer_dyn, f"{layer_dyn / layer_timed:.1f}x"])
        return rows, timed, dynamic

    rows, timed, dynamic = benchmark.pedantic(run_set, rounds=1,
                                              iterations=1)
    compression = dynamic / timed
    assert compression >= 10.0, f"only {compression:.1f}x"
    errors = [abs(r[3] - r[2]) / r[2] for r in rows]
    assert float(np.mean(errors)) <= 0.02, \
        f"mean speedup-ratio error {np.mean(errors):.2%}"

    text = format_table(
        ["layer", "rows", "speedup (det)", "speedup (compressed)",
         "ratio err", "timed instrs", "dynamic instrs", "compression"],
        rows,
        title=(f"Compressed-replay compression on tall layer "
               f"replications — {compression:.1f}x fewer timed "
               f"instructions overall"))
    publish("backend_compression", text, capsys)


#: The four-tier ladder, fastest last.
LADDER = (DETAILED, COMPRESSED_REPLAY, "batch-replay", "analytic-sampled")

#: Conservative CI floors for the measured per-simulation speedups vs
#: ``detailed`` (the archived JSON carries the actual numbers, which
#: are substantially higher on an idle machine).
SPEED_FLOORS = {"batch-replay": 2.5, "analytic-sampled": 100.0}


def bench_backend_speed(benchmark, capsys):
    """Wall-clock of the backend ladder on the tall layer set.

    The analytic tier is refitted at the benchmarked scale from the
    detailed tier's own cycles (a calibration table prices one scale
    regime — see :mod:`repro.analytic.fit`), which is exactly the
    ``repro calibrate`` workflow a user targeting this scale would
    run.  The refit is timed as part of nothing: calibration is a
    one-off, the per-simulation cost is what the ladder measures.
    """
    from repro.analytic.calibration import fit_table, profile_trace
    from repro.arch.timing.analytic import AnalyticSampledBackend

    config = config_from_env()
    names = ["conv2_1_1x1b", "conv3_1_1x1b", "conv4_1_1x1b",
             "conv4_1_proj", "conv5_1_1x1b", "conv5_1_proj"]
    layers = {l.name: l for l, _ in
              unique_gemm_layers(get_model("resnet50"))}
    workloads = [(name, make_layer_workload(layers[name], 1, 4,
                                            policy=REPLAY_SCALE))
                 for name in names]

    def features_of(name, kernel):
        workload = dict(workloads)[name]
        proc = DecoupledProcessor(config)
        staged = stage_spmm(proc.mem, workload.a, workload.b)
        trace = get_trace_kernel(kernel)(staged, KernelOptions())
        return profile_trace(trace, config).features()

    def run_ladder():
        measured = {}
        for backend in LADDER:
            runner = backend
            if backend == "analytic-sampled":
                table = fit_table(
                    [(f"{name}/{kernel}", features_of(name, kernel),
                      measured[DETAILED]["cycles"][(name, kernel)])
                     for name, _ in workloads
                     for kernel in (BASELINE, PROPOSED)])
                runner = AnalyticSampledBackend(table=table)
            wall = 0.0
            instrs = 0
            cycles = {}
            for name, workload in workloads:
                for kernel in (BASELINE, PROPOSED):
                    start = time.perf_counter()
                    res = _run(kernel, workload, runner, config)
                    wall += time.perf_counter() - start
                    instrs += res.stats.instructions
                    cycles[(name, kernel)] = res.stats.cycles
            measured[backend] = {"wall_seconds": wall,
                                 "instructions": instrs,
                                 "instr_per_sec": instrs / wall,
                                 "cycles": cycles}
        return measured

    measured = benchmark.pedantic(run_ladder, rounds=1, iterations=1)

    det = measured[DETAILED]
    rows = []
    for backend in LADDER:
        m = measured[backend]
        speedup = det["wall_seconds"] / m["wall_seconds"]
        errors = [abs(c - det["cycles"][key]) / det["cycles"][key]
                  for key, c in m["cycles"].items()]
        m["speedup_vs_detailed"] = speedup
        m["worst_cycle_error"] = max(errors)
        rows.append([backend, f"{m['wall_seconds']:.2f}s",
                     f"{m['instr_per_sec'] / 1e3:,.0f}k",
                     f"{speedup:.1f}x", f"{max(errors):.2%}"])

    # the ladder must actually be a ladder: each tier faster than the
    # last, with conservative floors vs detailed (CI machines vary)
    assert measured["batch-replay"]["wall_seconds"] \
        < measured[COMPRESSED_REPLAY]["wall_seconds"]
    for backend, floor in SPEED_FLOORS.items():
        speedup = measured[backend]["speedup_vs_detailed"]
        assert speedup >= floor, \
            f"{backend}: only {speedup:.1f}x vs detailed (floor {floor}x)"
    # and stay within the documented cycle tolerances (the analytic
    # tier is calibrated at this scale, so it must fit well in-regime)
    assert measured["batch-replay"]["worst_cycle_error"] <= 0.02
    assert measured["analytic-sampled"]["worst_cycle_error"] <= 0.05

    payload = {backend: {k: v for k, v in m.items() if k != "cycles"}
               for backend, m in measured.items()}
    atomic_write_text(RESULTS_DIR / "backend_speed.json",
                      json.dumps(payload, indent=1, sort_keys=True) + "\n")

    text = format_table(
        ["backend", "wall", "instr/s", "vs detailed", "worst cycle err"],
        rows,
        title=(f"Backend ladder on the tall layer set "
               f"({det['instructions']:,} instructions per backend)"))
    publish("backend_speed", text, capsys)
