"""Trace IR: dynamic instruction streams with loop-structure annotations.

The kernel builders are Python loops that emit the exact dynamic
instruction stream a compiled binary would execute.  Historically they
yielded flat streams, so every timing model had to pay O(dynamic
instructions).  The Trace IR keeps the *structure* of those loops:

* a :class:`Block` is a straight-line run of instructions;
* a :class:`Loop` is a body (blocks and nested loops) executed
  ``repeat`` times.  A loop marked ``steady`` guarantees that every
  iteration executes the *identical* instruction sequence (the kernels
  arrange this by bumping pointers held in registers instead of
  re-materialising addresses), which is what lets the
  ``compressed-replay`` timing backend time a couple of representative
  iterations and extrapolate the rest;
* a :class:`Trace` is the top-level sequence.

``Trace.instructions()`` lazily expands the structure back into the
exact flat stream, so every existing consumer (the detailed processor,
stream-counting validators, tests) keeps working; a raw generator with
no structure is wrapped by :meth:`Trace.from_stream` into one
single-iteration block.

Builders use :class:`TraceBuilder`::

    tb = TraceBuilder()
    tb.emit(bld.set_vl(vlmax))           # accepts instrs or iterables
    with tb.loop(num_iterations):        # steady by default
        tb.emit(inner_body())
    trace = tb.build()
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager

from repro.errors import KernelError
from repro.isa.instructions import (
    BRANCH_OPS,
    SCALAR_LOAD_OPS,
    SCALAR_STORE_OPS,
    VECTOR_DEST_OPS,
    Instr,
    Op,
)


class Block:
    """A straight-line run of instructions (no internal structure)."""

    __slots__ = ("instrs",)

    def __init__(self, instrs):
        self.instrs = list(instrs)

    @property
    def dynamic_length(self) -> int:
        return len(self.instrs)

    def __repr__(self) -> str:
        return f"Block({len(self.instrs)} instrs)"


class Loop:
    """``repeat`` executions of a body of blocks and nested loops.

    ``steady`` asserts that every iteration runs the identical
    instruction sequence (same opcodes, registers and immediates), so a
    timing model may measure one iteration and extrapolate.  Loops whose
    bodies differ between iterations must be emitted unrolled (or with
    ``steady=False``).
    """

    __slots__ = ("body", "repeat", "steady", "label", "_has_memory",
                 "_summary")

    def __init__(self, body, repeat: int, steady: bool = True,
                 label: str = ""):
        if repeat < 0:
            raise KernelError(f"loop repeat must be >= 0, not {repeat}")
        self.body = tuple(body)
        self.repeat = repeat
        self.steady = steady
        self.label = label

    @property
    def body_length(self) -> int:
        """Dynamic instructions of ONE iteration of the body."""
        return sum(node.dynamic_length for node in self.body)

    @property
    def dynamic_length(self) -> int:
        return self.repeat * self.body_length

    @property
    def has_memory(self) -> bool:
        """True if any instruction in the body touches memory (an
        introspection helper for timing models and analyses; cached)."""
        try:
            return self._has_memory
        except AttributeError:
            pass
        result = False
        for node in self.body:
            if type(node) is Block:
                if any(i.is_vector_mem or i.is_scalar_mem
                       for i in node.instrs):
                    result = True
                    break
            elif node.has_memory:
                result = True
                break
        self._has_memory = result
        return result

    def summary(self, limit: int | None = None):
        """The cached :func:`summarize_nodes` of one body iteration."""
        try:
            return self._summary
        except AttributeError:
            pass
        result = summarize_nodes(self.body, limit)
        if result is not None:  # a limit miss is not worth caching
            self._summary = result
        return result

    def __repr__(self) -> str:
        tag = "steady" if self.steady else "irregular"
        name = f" {self.label!r}" if self.label else ""
        return (f"Loop({tag}{name}, x{self.repeat}, "
                f"{self.body_length} instrs/iter)")


def _walk(nodes):
    for node in nodes:
        if type(node) is Block:
            yield from node.instrs
        else:
            body = node.body
            for _ in range(node.repeat):
                yield from _walk(body)


class Trace:
    """A structured dynamic instruction stream."""

    __slots__ = ("nodes",)

    def __init__(self, nodes=()):
        self.nodes = tuple(nodes)

    def instructions(self):
        """Lazily expand the exact flat dynamic stream."""
        return _walk(self.nodes)

    def __iter__(self):
        return self.instructions()

    @property
    def dynamic_length(self) -> int:
        """Total dynamic instruction count after expansion."""
        return sum(node.dynamic_length for node in self.nodes)

    def steady_fraction(self) -> float:
        """Share of dynamic instructions inside steady loops (top level
        of nesting counts the whole loop)."""
        total = self.dynamic_length
        if not total:
            return 0.0
        steady = sum(node.dynamic_length for node in self.nodes
                     if type(node) is Loop and node.steady)
        return steady / total

    def fingerprint(self) -> str:
        """sha256 over the exact expanded stream (opcode + all operands).

        Two traces share a fingerprint iff their dynamic instruction
        streams are identical instruction-for-instruction — the golden
        stream-identity tests pin kernel emissions to this digest.
        """
        digest = hashlib.sha256()
        first = True
        for instr in self.instructions():
            if not first:
                digest.update(b"\n")
            digest.update(",".join(map(str, instr.key())).encode())
            first = False
        return digest.hexdigest()

    @classmethod
    def from_stream(cls, stream) -> "Trace":
        """Wrap a raw (unannotated) stream as one straight-line block."""
        return cls((Block(stream),))

    def __repr__(self) -> str:
        return f"Trace({len(self.nodes)} nodes, {self.dynamic_length} instrs)"


# ======================================================================
# loop summaries: static single-iteration analysis for fast replay
# ======================================================================

#: Vector ops that read their destination register before writing it
#: (accumulate / merge / tail-preserving semantics).
_V_READS_DEST = frozenset({
    Op.VFMACC_VF, Op.VFMACC_VV, Op.VMACC_VV, Op.VMACC_VX,
    Op.VINDEXMAC_VX, Op.VREDSUM_VS, Op.VFREDUSUM_VS,
    Op.VSLIDEUP_VX, Op.VSLIDEUP_VI, Op.VMV_S_X, Op.VFMV_S_F,
})

#: Vector ops whose write does NOT cover the whole active slice
#: ``[0:vl]`` (single-element or tail-preserving writes).  They never
#: count as a *defining* write in the read-before-write analysis.
_V_PARTIAL_WRITE = frozenset({
    Op.VMV_S_X, Op.VFMV_S_F, Op.VREDSUM_VS, Op.VFREDUSUM_VS,
    Op.VSLIDEUP_VX, Op.VSLIDEUP_VI,
})

_V_USES_VS1 = frozenset({
    Op.VADD_VV, Op.VSUB_VV, Op.VAND_VV, Op.VOR_VV, Op.VXOR_VV,
    Op.VMIN_VV, Op.VMINU_VV, Op.VMAX_VV, Op.VMAXU_VV, Op.VMUL_VV,
    Op.VMACC_VV, Op.VFMACC_VV, Op.VFADD_VV, Op.VFSUB_VV, Op.VFMUL_VV,
    Op.VREDSUM_VS, Op.VFREDUSUM_VS, Op.VMV_V_V,
})

_V_USES_VS2 = frozenset({
    Op.VADD_VX, Op.VADD_VI, Op.VADD_VV, Op.VMUL_VX, Op.VFMACC_VF,
    Op.VFMACC_VV, Op.VFMUL_VF, Op.VSLIDE1DOWN_VX, Op.VSLIDEDOWN_VX,
    Op.VSLIDEDOWN_VI, Op.VMV_X_S, Op.VFMV_F_S, Op.VINDEXMAC_VX,
    Op.VSUB_VV, Op.VSUB_VX, Op.VRSUB_VX, Op.VRSUB_VI,
    Op.VAND_VV, Op.VAND_VX, Op.VOR_VV, Op.VOR_VX, Op.VXOR_VV, Op.VXOR_VX,
    Op.VMIN_VV, Op.VMIN_VX, Op.VMINU_VV, Op.VMINU_VX,
    Op.VMAX_VV, Op.VMAX_VX, Op.VMAXU_VV, Op.VMAXU_VX,
    Op.VMUL_VV, Op.VMACC_VV, Op.VMACC_VX, Op.VREDSUM_VS,
    Op.VFADD_VV, Op.VFADD_VF, Op.VFSUB_VV, Op.VFSUB_VF, Op.VFMUL_VV,
    Op.VFREDUSUM_VS, Op.VSLIDEUP_VX, Op.VSLIDEUP_VI, Op.VSLIDE1UP_VX,
})

#: Vector-domain ops that read an integer scalar through ``rs1``.
_V_READS_X = frozenset({
    Op.VADD_VX, Op.VMUL_VX, Op.VSLIDE1DOWN_VX, Op.VSLIDEDOWN_VX,
    Op.VSUB_VX, Op.VRSUB_VX, Op.VAND_VX, Op.VOR_VX, Op.VXOR_VX,
    Op.VMIN_VX, Op.VMINU_VX, Op.VMAX_VX, Op.VMAXU_VX, Op.VMACC_VX,
    Op.VSLIDEUP_VX, Op.VSLIDE1UP_VX, Op.VMV_V_X, Op.VMV_S_X,
    Op.VINDEXMAC_VX,
})

#: Vector-domain ops that read an FP scalar through ``rs1``.
_V_READS_F = frozenset({
    Op.VFMACC_VF, Op.VFMUL_VF, Op.VFMV_S_F, Op.VFADD_VF, Op.VFSUB_VF,
})

_ALU_RR_OPS = frozenset({
    Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLL, Op.SRL, Op.SRA,
    Op.SLT, Op.SLTU, Op.MUL,
})
_ALU_RI_OPS = frozenset({
    Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI, Op.SRLI, Op.SRAI,
    Op.SLTI, Op.SLTIU,
})

_EMPTY = ()


def instruction_roles(instr):
    """Register operands read and written by one instruction.

    Returns ``(x_reads, x_writes, f_reads, f_writes, v_reads, v_writes)``
    as tuples of register indices.  Unused operand slots are *not*
    reported (the flat :class:`~repro.isa.instructions.Instr` record
    stores 0 in them, which would alias real register 0 for the FP and
    vector files).  ``vindexmac.vx``'s dynamically addressed vector
    source is not included — callers that care must resolve it from the
    runtime value of ``x[rs1]``.
    """
    op = instr.op
    if op in _ALU_RR_OPS:
        return (instr.rs1, instr.rs2), (instr.rd,), \
            _EMPTY, _EMPTY, _EMPTY, _EMPTY
    if op in _ALU_RI_OPS:
        return (instr.rs1,), (instr.rd,), _EMPTY, _EMPTY, _EMPTY, _EMPTY
    if op in (Op.LUI, Op.AUIPC):
        return _EMPTY, (instr.rd,), _EMPTY, _EMPTY, _EMPTY, _EMPTY
    if op in SCALAR_LOAD_OPS:
        if op is Op.FLW:
            return (instr.rs1,), _EMPTY, _EMPTY, (instr.rd,), \
                _EMPTY, _EMPTY
        return (instr.rs1,), (instr.rd,), _EMPTY, _EMPTY, _EMPTY, _EMPTY
    if op in SCALAR_STORE_OPS:
        if op is Op.FSW:
            return (instr.rs1,), _EMPTY, (instr.rs2,), _EMPTY, \
                _EMPTY, _EMPTY
        return (instr.rs1, instr.rs2), _EMPTY, _EMPTY, _EMPTY, \
            _EMPTY, _EMPTY
    if op in BRANCH_OPS:
        if op is Op.JAL:
            return _EMPTY, _EMPTY, _EMPTY, _EMPTY, _EMPTY, _EMPTY
        if op is Op.JALR:
            return (instr.rs1,), _EMPTY, _EMPTY, _EMPTY, _EMPTY, _EMPTY
        return (instr.rs1, instr.rs2), _EMPTY, _EMPTY, _EMPTY, \
            _EMPTY, _EMPTY
    # vector domain
    x_reads = (instr.rs1,) if (op in _V_READS_X or op in
                               (Op.VLE32, Op.VSE32, Op.VSETVLI)) else _EMPTY
    x_writes = (instr.rd,) if op in (Op.VMV_X_S, Op.VSETVLI) else _EMPTY
    f_reads = (instr.rs1,) if op in _V_READS_F else _EMPTY
    f_writes = (instr.rd,) if op is Op.VFMV_F_S else _EMPTY
    v_reads = []
    if op in _V_USES_VS1:
        v_reads.append(instr.vs1)
    if op in _V_USES_VS2:
        v_reads.append(instr.vs2)
    if op is Op.VSE32 or op in _V_READS_DEST:
        v_reads.append(instr.vd)
    v_writes = (instr.vd,) if op in VECTOR_DEST_OPS else _EMPTY
    return x_reads, x_writes, f_reads, f_writes, tuple(v_reads), v_writes


class LoopSummary:
    """Static facts about ONE iteration of a loop body.

    ``instrs`` is the exact per-iteration instruction sequence with all
    nested loops unrolled.  The ``*_live_in`` sets hold registers read
    before any defining write (their entry value flows into the
    iteration); the ``*_written`` sets hold every register modified.
    Register 0 of the integer file (hardwired zero) is excluded.  The
    batch-replay timing backend uses these to vectorise steady-loop
    middles; see :mod:`repro.arch.timing.batch`.
    """

    __slots__ = ("instrs", "x_live_in", "x_written", "f_live_in",
                 "f_written", "v_live_in", "v_written", "has_vsetvli",
                 "mem_slots")

    def __init__(self, instrs, x_live_in, x_written, f_live_in, f_written,
                 v_live_in, v_written, has_vsetvli, mem_slots):
        self.instrs = instrs
        self.x_live_in = x_live_in
        self.x_written = x_written
        self.f_live_in = f_live_in
        self.f_written = f_written
        self.v_live_in = v_live_in
        self.v_written = v_written
        self.has_vsetvli = has_vsetvli
        self.mem_slots = mem_slots

    def __repr__(self) -> str:
        return (f"LoopSummary({len(self.instrs)} instrs/iter, "
                f"{self.mem_slots} mem slots, "
                f"x_live={sorted(self.x_live_in)})")


def summarize_nodes(nodes, limit: int | None = None):
    """Build the :class:`LoopSummary` of one iteration of ``nodes``.

    Nested loops are fully unrolled into the flat sequence.  If the
    unrolled body exceeds ``limit`` instructions, returns ``None`` (the
    caller should analyse the nested loops individually instead).
    """
    instrs = []
    for instr in _walk(nodes):
        instrs.append(instr)
        if limit is not None and len(instrs) > limit:
            return None
    x_live, x_written = set(), set()
    f_live, f_written = set(), set()
    v_live, v_written, v_defined = set(), set(), set()
    has_vsetvli = False
    mem_slots = 0
    for instr in instrs:
        op = instr.op
        if op is Op.VSETVLI:
            has_vsetvli = True
        if instr.is_vector_mem or instr.is_scalar_mem:
            mem_slots += 1
        xr, xw, fr, fw, vr, vw = instruction_roles(instr)
        for reg in xr:
            if reg and reg not in x_written:
                x_live.add(reg)
        for reg in fr:
            if reg not in f_written:
                f_live.add(reg)
        for reg in vr:
            if reg not in v_defined:
                v_live.add(reg)
        for reg in xw:
            if reg:
                x_written.add(reg)
        f_written.update(fw)
        for reg in vw:
            v_written.add(reg)
            if op not in _V_PARTIAL_WRITE:
                v_defined.add(reg)
    return LoopSummary(tuple(instrs), frozenset(x_live),
                       frozenset(x_written), frozenset(f_live),
                       frozenset(f_written), frozenset(v_live),
                       frozenset(v_written), has_vsetvli, mem_slots)


class TraceBuilder:
    """Incremental construction of a :class:`Trace` from kernel loops."""

    def __init__(self):
        self._stack: list[list] = [[]]
        self._run: list[Instr] = []

    def emit(self, *items) -> None:
        """Append instructions: each item is an ``Instr`` or an iterable
        of them (e.g. the generator helpers in ``kernels.builder``)."""
        run = self._run
        for item in items:
            if isinstance(item, Instr):
                run.append(item)
            else:
                run.extend(item)

    def _flush(self) -> None:
        if self._run:
            self._stack[-1].append(Block(self._run))
            self._run = []

    @contextmanager
    def loop(self, repeat: int, steady: bool = True, label: str = ""):
        """Everything emitted inside the ``with`` is ONE iteration of a
        loop executed ``repeat`` times.  ``repeat=0`` discards the body.
        """
        self._flush()
        self._stack.append([])
        try:
            yield self
        finally:
            self._flush()
            body = self._stack.pop()
            if repeat > 0 and body:
                self._stack[-1].append(Loop(body, repeat, steady, label))

    def build(self) -> Trace:
        self._flush()
        if len(self._stack) != 1:
            raise KernelError("unbalanced TraceBuilder.loop() nesting")
        return Trace(self._stack[0])
